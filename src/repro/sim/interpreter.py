"""The CFG interpreter: executes IR programs on the mote model.

Semantics mirror a 16-bit MCU: all scalar values wrap to signed 16-bit,
division truncates toward zero (C semantics), shifts mask their count to
0–15, division/modulo by zero aborts the run with a
:class:`~repro.errors.SimulationError`.  Cycle accounting follows the
platform's :class:`~repro.mote.cpu.CpuModel` exactly, with control-transfer
costs resolved against the active :class:`~repro.placement.Layout` — so
re-running the same program under a different layout yields different cycle
counts and misprediction totals, which is the effect the paper measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import SimulationError
from repro.ir.instructions import (
    BinaryOp,
    Branch,
    Instruction,
    Jump,
    Opcode,
    Return,
    UnaryOp,
)
from repro.ir.procedure import Procedure
from repro.ir.program import Program
from repro.mote.platform import Platform
from repro.mote.radio import Radio
from repro.mote.sensors import SensorSuite
from repro.obs import counters as hwc
from repro.placement.layout import ProgramLayout
from repro.sim.trace import ExecutionCounters, InvocationRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> mote)
    from repro.faults.model import FaultInjector

__all__ = ["Interpreter"]

_INT_MIN, _INT_MAX = -(1 << 15), (1 << 15) - 1
_DEFAULT_MAX_STEPS = 200_000


def _wrap16(value: int) -> int:
    """Wrap a Python int to signed 16-bit two's complement."""
    return ((value + (1 << 15)) & 0xFFFF) - (1 << 15)


def _trunc_div(a: int, b: int) -> int:
    """C-style integer division (truncates toward zero)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


class Interpreter:
    """Executes one program instance (globals persist across activations)."""

    def __init__(
        self,
        program: Program,
        platform: Platform,
        sensors: SensorSuite,
        layout: Optional[ProgramLayout] = None,
        radio: Optional[Radio] = None,
        record_paths: bool = False,
        max_steps_per_invocation: int = _DEFAULT_MAX_STEPS,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        self.program = program
        self.platform = platform
        self.sensors = sensors
        self.layout = layout or ProgramLayout.source_order(program)
        self.radio = radio if radio is not None else Radio()
        self.record_paths = record_paths
        self.max_steps = max_steps_per_invocation
        self.faults = faults
        if faults is not None:
            # Route hardware-level faults to where the hardware lives; the
            # interpreter itself stays fault-oblivious.
            self.radio.faults = faults
            self.sensors.attach_faults(faults)

        self.globals: dict[str, int] = {k: _wrap16(v) for k, v in program.globals_.items()}
        self.arrays: dict[str, list[int]] = {
            name: [0] * size for name, size in program.arrays.items()
        }
        self.leds = 0
        self.cycle = 0
        self.counters = ExecutionCounters()
        self.records: list[InvocationRecord] = []
        self._resolved = {
            proc.name: self.layout.layout(proc.name).resolve_all_branches()
            for proc in program
        }

    # -- value plumbing -------------------------------------------------------

    def _read(self, frame: dict[str, int], name: str) -> int:
        if name in frame:
            return frame[name]
        if name in self.globals:
            return self.globals[name]
        raise SimulationError(f"read of unbound variable {name!r}")

    def _write(self, frame: dict[str, int], name: str, value: int) -> None:
        value = _wrap16(value)
        if name in self.globals:
            self.globals[name] = value
        else:
            frame[name] = value

    def _array(self, name: str) -> list[int]:
        try:
            return self.arrays[name]
        except KeyError:
            raise SimulationError(f"access to undeclared array {name!r}") from None

    def _index(self, name: str, idx: int) -> int:
        arr = self._array(name)
        if not 0 <= idx < len(arr):
            raise SimulationError(
                f"array index out of bounds: {name}[{idx}] (size {len(arr)})"
            )
        return idx

    # -- instruction execution ----------------------------------------------------

    def _binop(self, op: BinaryOp, a: int, b: int) -> int:
        if op is BinaryOp.ADD:
            return a + b
        if op is BinaryOp.SUB:
            return a - b
        if op is BinaryOp.MUL:
            return a * b
        if op is BinaryOp.DIV:
            if b == 0:
                raise SimulationError("division by zero")
            return _trunc_div(a, b)
        if op is BinaryOp.MOD:
            if b == 0:
                raise SimulationError("modulo by zero")
            return a - b * _trunc_div(a, b)
        if op is BinaryOp.AND:
            return a & b
        if op is BinaryOp.OR:
            return a | b
        if op is BinaryOp.XOR:
            return a ^ b
        if op is BinaryOp.SHL:
            return a << (b & 15)
        if op is BinaryOp.SHR:
            return a >> (b & 15)
        if op is BinaryOp.LT:
            return int(a < b)
        if op is BinaryOp.LE:
            return int(a <= b)
        if op is BinaryOp.GT:
            return int(a > b)
        if op is BinaryOp.GE:
            return int(a >= b)
        if op is BinaryOp.EQ:
            return int(a == b)
        if op is BinaryOp.NE:
            return int(a != b)
        raise SimulationError(f"unknown binary operator {op}")  # pragma: no cover

    def _execute_instruction(
        self, instr: Instruction, frame: dict[str, int], depth: int
    ) -> None:
        op = instr.opcode
        if op is Opcode.CONST:
            assert instr.dst is not None
            self._write(frame, instr.dst, int(instr.imm))  # type: ignore[arg-type]
        elif op is Opcode.MOV:
            assert instr.dst is not None
            self._write(frame, instr.dst, self._read(frame, instr.srcs[0]))
        elif op is Opcode.BINOP:
            assert instr.dst is not None and isinstance(instr.imm, BinaryOp)
            a = self._read(frame, instr.srcs[0])
            b = self._read(frame, instr.srcs[1])
            self._write(frame, instr.dst, self._binop(instr.imm, a, b))
        elif op is Opcode.UNOP:
            assert instr.dst is not None and isinstance(instr.imm, UnaryOp)
            a = self._read(frame, instr.srcs[0])
            self._write(frame, instr.dst, -a if instr.imm is UnaryOp.NEG else int(a == 0))
        elif op is Opcode.LOAD:
            assert instr.dst is not None and isinstance(instr.imm, str)
            idx = self._index(instr.imm, self._read(frame, instr.srcs[0]))
            self._write(frame, instr.dst, self._array(instr.imm)[idx])
        elif op is Opcode.STORE:
            assert isinstance(instr.imm, str)
            idx = self._index(instr.imm, self._read(frame, instr.srcs[0]))
            self._array(instr.imm)[idx] = _wrap16(self._read(frame, instr.srcs[1]))
        elif op is Opcode.SENSE:
            assert instr.dst is not None and isinstance(instr.imm, str)
            self._write(frame, instr.dst, self.sensors.read(instr.imm))
            self.counters.sense_reads += 1
        elif op is Opcode.SEND:
            self.radio.transmit(self._read(frame, instr.srcs[0]), self.cycle)
            self.counters.sends += 1
        elif op is Opcode.LED:
            self.leds = self._read(frame, instr.srcs[0]) & 0x7
        elif op is Opcode.CALL:
            assert isinstance(instr.imm, str)
            args = [self._read(frame, a) for a in instr.args]
            value = self.invoke(instr.imm, args, depth=depth + 1)
            if instr.dst is not None:
                self._write(frame, instr.dst, value)
        elif op in (Opcode.NOP, Opcode.HALT):
            pass
        else:  # pragma: no cover - exhaustive over Opcode
            raise SimulationError(f"unknown opcode {op}")

    # -- procedure invocation -----------------------------------------------------

    def invoke(self, proc_name: str, args: Sequence[int] = (), depth: int = 0) -> int:
        """Run one invocation of ``proc_name``; returns its value (0 if void).

        Records an :class:`InvocationRecord` with exact entry/exit cycles and
        updates the ground-truth counters as execution proceeds.
        """
        proc = self.program.procedure(proc_name)
        if len(args) != len(proc.params):
            raise SimulationError(
                f"{proc_name!r} expects {len(proc.params)} args, got {len(args)}"
            )
        frame = {p: _wrap16(int(a)) for p, a in zip(proc.params, args)}
        layout = self.layout.layout(proc_name)
        resolved = self._resolved[proc_name]
        cpu = self.platform.cpu
        entry_cycle = self.cycle
        path: Optional[list[str]] = [] if self.record_paths else None

        # Hardware counters: bracket the invocation so cycle/branch events
        # attribute to this procedure (exclusive counts; nested calls open
        # their own scope).  ``hw is None`` is the disabled fast path.
        hw = hwc.active()
        if hw is not None:
            hw.push_proc(proc_name)
        try:
            label = proc.cfg.entry
            return_value = 0
            for _ in range(self.max_steps):
                block = proc.cfg.block(label)
                self.counters.record_block(proc_name, label)
                if path is not None:
                    path.append(label)
                self.cycle += cpu.block_cycles(block)
                for instr in block.instructions:
                    self._execute_instruction(instr, frame, depth)

                term = block.terminator
                if isinstance(term, Return):
                    cost = cpu.return_cost()
                    self.cycle += cost
                    if hw is not None:
                        hw.ret(cost)
                    if term.value is not None:
                        return_value = self._read(frame, term.value)
                    break
                if isinstance(term, Jump):
                    cost = cpu.jump_cost(fallthrough=layout.jump_is_elided(label))
                    self.cycle += cost
                    if hw is not None:
                        hw.jump(cost)
                    self.counters.record_edge(proc_name, label, "jump")
                    label = term.target
                    continue
                assert isinstance(term, Branch)
                arm = "then" if self._read(frame, term.cond) != 0 else "else"
                site = resolved[label]
                timing = cpu.branch_outcome(
                    taken=site.arm_taken(arm),
                    backward_target=site.backward_taken_target,
                )
                self.cycle += timing.cycles
                if arm == site.extra_jump_arm:
                    self.cycle += cpu.jump_cycles
                    if hw is not None:
                        hw.extra_jump(cpu.jump_cycles)
                self.counters.record_edge(proc_name, label, arm)
                self.counters.record_branch(
                    proc_name, label, taken=timing.taken, mispredicted=timing.mispredicted
                )
                label = term.then_target if arm == "then" else term.else_target
            else:
                raise SimulationError(
                    f"{proc_name!r} exceeded {self.max_steps} blocks in one invocation"
                )
        finally:
            if hw is not None:
                hw.pop_proc()

        self.counters.invocations[proc_name] += 1
        self.records.append(
            InvocationRecord(
                procedure=proc_name,
                entry_cycle=entry_cycle,
                exit_cycle=self.cycle,
                depth=depth,
                path=tuple(path) if path is not None else None,
            )
        )
        return return_value

    def run_activation(self) -> int:
        """One top-level activation of the program's entry procedure."""
        return self.invoke(self.program.entry, ())

    def hot_swap_layout(self, layout: ProgramLayout) -> None:
        """Re-flash the code image mid-run: adopt a new block layout.

        Only safe at an activation boundary (no invocation in flight) — the
        mote analogue is rewriting flash while the scheduler is idle.  RAM
        state (globals, arrays), the cycle counter, counters, and records
        all survive: the swap changes *where code sits in flash*, not what
        it computes, so subsequent activations pay the new layout's
        control-transfer costs on the same program state.
        """
        if layout.program is not self.program and set(layout.layouts) != set(
            self.program.procedures
        ):
            raise SimulationError(
                "hot-swapped layout does not cover this interpreter's program"
            )
        self.layout = layout
        self._resolved = {
            proc.name: layout.layout(proc.name).resolve_all_branches()
            for proc in self.program
        }

    def set_sensors(self, sensors: SensorSuite) -> None:
        """Swap the sensor suite between activations (environment segments)."""
        self.sensors = sensors
        if self.faults is not None:
            self.sensors.attach_faults(self.faults)

    def reboot(self) -> None:
        """Reset volatile (RAM) state the way a node reboot would.

        Globals and arrays return to their initial images and the LEDs go
        dark.  The cycle counter, ground-truth counters, and already-kept
        records are simulator bookkeeping — not mote RAM — so truncating
        the in-flight activation's records is the caller's job (see
        :func:`repro.sim.runner.run_program`).
        """
        self.globals = {k: _wrap16(v) for k, v in self.program.globals_.items()}
        self.arrays = {name: [0] * size for name, size in self.program.arrays.items()}
        self.leds = 0
