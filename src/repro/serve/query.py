"""The query side: estimate snapshots served back to the fleet.

A query never touches EM — it reads the tenant's
:class:`~repro.core.online.OnlineEstimator` state as of the last absorbed
micro-batch and packages it: per-procedure branch-probability estimates
(theta) with their Wald CI half-widths, cumulative sample counts, and the
convergence policy's current verdict.  Shards still sitting in the batcher
are reported as ``pending`` so a caller can tell "converged" from
"converged, but ten shards haven't been folded in yet".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.online import OnlineEstimator
from repro.serve.protocol import TenantKey

__all__ = ["TenantEstimate", "snapshot_estimate"]


@dataclass(frozen=True)
class TenantEstimate:
    """One tenant's current estimate, as served to ``query`` requests."""

    tenant: TenantKey
    shards_absorbed: int
    pending: int
    total_samples: int
    n_samples: dict[str, int]
    thetas: dict[str, np.ndarray]
    half_widths: dict[str, np.ndarray]
    max_half_width: float
    converged: bool
    budget_exhausted: bool

    def to_json(self) -> dict:
        """The wire form of this snapshot (``op: "estimate"``)."""
        return {
            "op": "estimate",
            "tenant": str(self.tenant),
            "shards_absorbed": self.shards_absorbed,
            "pending": self.pending,
            "total_samples": self.total_samples,
            "n_samples": dict(sorted(self.n_samples.items())),
            "thetas": {
                name: [float(x) for x in theta]
                for name, theta in sorted(self.thetas.items())
            },
            "half_widths": {
                name: [float(x) for x in hw]
                for name, hw in sorted(self.half_widths.items())
            },
            "max_half_width": self.max_half_width,
            "converged": self.converged,
            "budget_exhausted": self.budget_exhausted,
        }


def snapshot_estimate(
    tenant: TenantKey, estimator: OnlineEstimator, pending: int
) -> TenantEstimate:
    """Read ``estimator``'s current state into a :class:`TenantEstimate`.

    Pure read — no refit, no RNG — so queries are cheap and serving them
    never perturbs the estimate.
    """
    trajectory = estimator.trajectory
    last = trajectory[-1] if trajectory else None
    return TenantEstimate(
        tenant=tenant,
        shards_absorbed=len(trajectory),
        pending=pending,
        total_samples=estimator.total_samples,
        n_samples=dict(last.n_samples) if last else {},
        thetas=estimator.thetas,
        half_widths=estimator.half_widths,
        max_half_width=last.max_half_width if last else 0.0,
        converged=last.converged if last else False,
        budget_exhausted=last.budget_exhausted if last else False,
    )
