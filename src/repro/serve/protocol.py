"""The serve wire protocol: JSON lines in, JSON lines out.

One request per line, one response per line, everything UTF-8 JSON objects.
The protocol is deliberately tiny — motes are the clients — and every
malformed input maps to a **structured error** with a stable machine
``code`` (:class:`~repro.errors.ProtocolError`), never a dropped
connection or a silent discard: a fleet retries on codes.

Requests
--------

``upload`` — one timing shard from one mote::

    {"op": "upload", "deployment": "field-7", "version": "1.4.2",
     "mote": 12, "seq": 3,
     "samples": {"main": [410.0, 388.0], "classify": [88.0]}}

``query`` — current estimate for a tenant::

    {"op": "query", "deployment": "field-7", "version": "1.4.2"}

Both may carry an optional ``"trace"`` string — a client-chosen causal id
that the service stamps on every span the request touches
(``serve.ingest`` → ``serve.absorb`` → ``serve.query`` share it), so one
shard's journey is greppable across the exported timeline.  Absent, uploads
fall back to the deterministic ``deployment@version/mote/seq`` identity
(:attr:`ShardUpload.causal_id`).

``stats`` — service-wide ingest totals::

    {"op": "stats"}

Responses
---------

Uploads are answered with an ``ack`` whose ``status`` is ``accepted``
(queued for micro-batched absorption), ``deferred`` (backpressure: the
tenant's :class:`~repro.profiling.budget.SampleBudget` is exhausted or its
backlog is full — retry after ``retry_after_s``), or — never silently —
an ``error`` object (``op: "error"``, with ``code`` and ``detail``) for
malformed or unroutable requests.  Queries are answered with an
``estimate`` object carrying per-procedure thetas and Wald CI half-widths
(see :mod:`repro.serve.query`).

Error codes are part of the contract: ``bad-json``, ``bad-request``,
``unknown-op``, ``bad-shard``, ``unknown-tenant``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from repro.errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "TenantKey",
    "ShardUpload",
    "QueryRequest",
    "StatsRequest",
    "Receipt",
    "parse_request",
    "parse_request_line",
    "error_response",
    "encode",
]

#: Bumped on any wire-visible change; echoed by ``stats`` responses.
PROTOCOL_VERSION = "repro.serve/1"

#: The stable error-code vocabulary (documented in docs/serving.md).
ERROR_CODES = ("bad-json", "bad-request", "unknown-op", "bad-shard", "unknown-tenant")


@dataclass(frozen=True, order=True)
class TenantKey:
    """The routing identity of one estimator stream.

    A *tenant* is one ``(deployment_id, program_version)`` pair: all motes
    of one deployment running one firmware image feed one
    :class:`~repro.core.online.OnlineEstimator`.  A new firmware rollout is
    a new tenant — its CFG (and therefore its timing model) changed, so its
    samples must never mix with the old image's stream.
    """

    deployment_id: str
    program_version: str

    def __str__(self) -> str:
        return f"{self.deployment_id}@{self.program_version}"


@dataclass(frozen=True)
class ShardUpload:
    """One mote's timing shard: per-procedure measured durations."""

    tenant: TenantKey
    mote_id: int
    seq: int
    samples: dict[str, np.ndarray] = field(compare=False)
    trace_id: Optional[str] = field(default=None, compare=False)

    @property
    def n_samples(self) -> int:
        return int(sum(xs.size for xs in self.samples.values()))

    @property
    def causal_id(self) -> str:
        """The id stitching this shard's spans together across the timeline.

        The client's ``trace`` field when it sent one; otherwise the shard's
        own wire identity — deterministic, so replayed fleets produce the
        same causal chain byte-for-byte.
        """
        return self.trace_id or f"{self.tenant}/{self.mote_id}/{self.seq}"


@dataclass(frozen=True)
class QueryRequest:
    """Ask for a tenant's current estimate."""

    tenant: TenantKey
    trace_id: Optional[str] = None


@dataclass(frozen=True)
class StatsRequest:
    """Ask for service-wide ingest totals."""


@dataclass(frozen=True)
class Receipt:
    """The service's verdict on one upload.

    ``status`` is ``accepted`` | ``deferred``; rejections surface as
    :class:`~repro.errors.ProtocolError` (and on the wire as ``error``
    objects) instead — a rejected shard was never parseable or routable,
    so there is nothing to receipt.
    """

    status: str
    tenant: TenantKey
    pending: int
    reason: Optional[str] = None
    retry_after_s: Optional[float] = None

    def to_json(self) -> dict:
        payload: dict[str, Any] = {
            "op": "ack",
            "status": self.status,
            "tenant": str(self.tenant),
            "pending": self.pending,
        }
        if self.reason is not None:
            payload["reason"] = self.reason
        if self.retry_after_s is not None:
            payload["retry_after_s"] = self.retry_after_s
        return payload


def _need(obj: Mapping, key: str, types, code: str) -> Any:
    if key not in obj:
        raise ProtocolError(code, f"missing required field {key!r}")
    value = obj[key]
    if not isinstance(value, types) or isinstance(value, bool):
        raise ProtocolError(
            code,
            f"field {key!r} must be {getattr(types, '__name__', types)}, "
            f"got {type(value).__name__}",
        )
    return value


def _tenant_of(obj: Mapping) -> TenantKey:
    deployment = _need(obj, "deployment", str, "bad-request")
    version = _need(obj, "version", str, "bad-request")
    if not deployment or not version:
        raise ProtocolError("bad-request", "deployment and version must be non-empty")
    return TenantKey(deployment, version)


def _shard_samples(obj: Mapping) -> dict[str, np.ndarray]:
    raw = _need(obj, "samples", dict, "bad-shard")
    if not raw:
        raise ProtocolError("bad-shard", "samples must name at least one procedure")
    samples: dict[str, np.ndarray] = {}
    for name, xs in raw.items():
        if not isinstance(name, str) or not name:
            raise ProtocolError("bad-shard", f"procedure name must be a string, got {name!r}")
        if not isinstance(xs, list):
            raise ProtocolError(
                "bad-shard", f"samples[{name!r}] must be a list of durations"
            )
        for x in xs:
            if isinstance(x, bool) or not isinstance(x, (int, float)):
                raise ProtocolError(
                    "bad-shard",
                    f"samples[{name!r}] holds a non-numeric duration: {x!r}",
                )
            if not np.isfinite(x) or x < 0:
                raise ProtocolError(
                    "bad-shard",
                    f"samples[{name!r}] holds an impossible duration: {x!r}",
                )
        if xs:
            samples[name] = np.asarray(xs, dtype=float)
    if not samples:
        raise ProtocolError("bad-shard", "shard carries zero samples")
    return samples


def _trace_of(obj: Mapping) -> Optional[str]:
    if "trace" not in obj:
        return None
    trace = obj["trace"]
    if not isinstance(trace, str) or not trace:
        raise ProtocolError(
            "bad-request", f"field 'trace' must be a non-empty string, got {trace!r}"
        )
    return trace


def parse_request(obj: Any):
    """Validate one decoded request object into a typed request.

    Returns a :class:`ShardUpload`, :class:`QueryRequest` or
    :class:`StatsRequest`; raises :class:`~repro.errors.ProtocolError`
    with a stable code on any violation.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    op = _need(obj, "op", str, "bad-request")
    if op == "upload":
        tenant = _tenant_of(obj)
        mote = _need(obj, "mote", int, "bad-request")
        seq = _need(obj, "seq", int, "bad-request")
        if mote < 0 or seq < 0:
            raise ProtocolError("bad-request", "mote and seq must be non-negative")
        return ShardUpload(
            tenant=tenant,
            mote_id=mote,
            seq=seq,
            samples=_shard_samples(obj),
            trace_id=_trace_of(obj),
        )
    if op == "query":
        return QueryRequest(tenant=_tenant_of(obj), trace_id=_trace_of(obj))
    if op == "stats":
        return StatsRequest()
    raise ProtocolError("unknown-op", f"unknown op {op!r} (known: upload, query, stats)")


def parse_request_line(line: str):
    """Decode + validate one wire line (the JSONL entry point)."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad-json", f"not valid JSON: {exc}") from exc
    return parse_request(obj)


def error_response(exc: ProtocolError) -> dict:
    """The structured error object a protocol violation is answered with."""
    return {"op": "error", "code": exc.code, "detail": exc.detail}


def encode(payload: Mapping) -> str:
    """One response line (no trailing newline), deterministic key order."""
    return json.dumps(payload, sort_keys=True)
