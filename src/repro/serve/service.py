"""The ingestion service: fleet uploads in, estimates out.

:class:`IngestionService` is the tentpole of :mod:`repro.serve` — a
single-process asyncio service that accepts timing-shard uploads from
(simulated) motes, routes them by tenant
(:class:`~repro.serve.protocol.TenantKey`) to a pool of
:class:`~repro.serve.worker.EstimatorWorker` tasks, micro-batches
absorption, and answers queries with per-procedure estimates and Wald CI
half-widths.

The design splits hot-path decisions from absorption:

* :meth:`submit` runs synchronously inside the event loop — parse already
  done, it checks the tenant's :class:`~repro.profiling.budget.SampleBudget`
  and backlog cap, buffers the shard in the service-level
  :class:`~repro.serve.batcher.MicroBatcher`, and answers with a
  :class:`~repro.serve.protocol.Receipt` immediately.  Budget or backlog
  pressure yields ``deferred`` (with ``retry_after_s``) — **deferral, not
  drop**: the shard is not absorbed, the estimator is untouched, and the
  mote is told to retry.
* Full batches are enqueued to the owning worker's FIFO queue; worker tasks
  absorb them (one EM sweep per batch) off the hot path.

**Determinism.**  Budget verdicts and batch composition are decided at
submit time from counters the service updates synchronously, so they are a
pure function of the upload order — never of worker scheduling.  (Backlog
deferral is the exception by design: it reflects live absorption lag.)  Each
tenant's batches are absorbed FIFO by exactly one worker, and absorption
order *across* tenants doesn't matter (estimators are per-tenant).  Hence
the same upload sequence yields bit-identical estimates at any worker
count, and :meth:`rebalance` — checkpoint handoff mid-stream — changes
nothing: pending shards stay in the service-level batcher (batch boundaries
survive the move), and the estimator continues from its checkpoint
bit-for-bit.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.online import OnlineOptions
from repro.errors import ProtocolError, ServeError
from repro.ir.program import Program
from repro.mote.platform import Platform
from repro.obs.health import AlertEvent, EstimatorHealthMonitor, HealthConfig
from repro.placement.layout import ProgramLayout
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    QueryRequest,
    Receipt,
    ShardUpload,
    StatsRequest,
    TenantKey,
    error_response,
    parse_request_line,
)
from repro.serve.query import TenantEstimate, snapshot_estimate
from repro.serve.router import ShardRouter
from repro.serve.worker import AbsorbResult, EstimatorWorker

__all__ = ["ServiceConfig", "TenantStats", "IngestionService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Sizing knobs for one :class:`IngestionService`.

    ``flush_interval_s=None`` disables the age trigger entirely — batches
    release on count alone (plus the end-of-stream drain), which is the
    fully deterministic mode the tests and benchmarks use.  ``max_backlog``
    caps each tenant's unabsorbed shards (buffered + queued); beyond it,
    uploads defer.  ``health`` attaches an
    :class:`~repro.obs.health.EstimatorHealthMonitor` to every tenant's
    estimator (drift detection, CI-calibration audit, SLO alerts) — purely
    observational, so estimates stay bit-identical with it on or off.
    """

    n_workers: int = 1
    max_batch: int = 8
    flush_interval_s: Optional[float] = None
    max_backlog: int = 256
    retry_after_s: float = 0.5
    health: Optional[HealthConfig] = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ServeError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.max_backlog < 1:
            raise ServeError(f"max_backlog must be >= 1, got {self.max_backlog}")
        if self.flush_interval_s is not None and self.flush_interval_s <= 0:
            raise ServeError(
                f"flush_interval_s must be positive or None, got {self.flush_interval_s}"
            )
        if self.retry_after_s <= 0:
            raise ServeError(f"retry_after_s must be positive, got {self.retry_after_s}")


@dataclass
class TenantStats:
    """Always-on per-tenant ingest tallies (plain ints, no obs dependency)."""

    accepted: int = 0
    deferred: int = 0
    samples: int = 0
    batches: int = 0


@dataclass
class _Registration:
    program: Program
    platform: Platform
    options: OnlineOptions
    layout: Optional[ProgramLayout]
    accepted_counts: dict[str, int] = field(default_factory=dict)
    in_flight: int = 0
    # Health monitoring (None when ServiceConfig.health is off).  The monitor
    # is service-owned — it survives rebalance handoffs (re-attached to the
    # resumed estimator) because monitors are not part of checkpoints.
    monitor: Optional[EstimatorHealthMonitor] = None
    latencies_s: list = field(default_factory=list)
    slo_breached: dict = field(default_factory=dict)


class IngestionService:
    """Routes, batches and absorbs a fleet's timing shards.  See module doc."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.config = config or ServiceConfig()
        self._clock = clock
        self._router = ShardRouter(self.config.n_workers)
        self._workers = [
            EstimatorWorker(i, clock) for i in range(self.config.n_workers)
        ]
        self._queues: list[asyncio.Queue] = []
        self._tasks: list[asyncio.Task] = []
        self._flusher: Optional[asyncio.Task] = None
        self._batcher = MicroBatcher(self.config.max_batch)
        self._registry: dict[TenantKey, _Registration] = {}
        self._tenant_stats: dict[TenantKey, TenantStats] = {}
        self._latencies: list[float] = []
        self._rejected = 0
        self._queries = 0
        self._started = False
        self._started_at: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker tasks (and the flusher, if age-flushing is on)."""
        if self._started:
            raise ServeError("service already started")
        self._queues = [asyncio.Queue() for _ in self._workers]
        self._tasks = [
            asyncio.create_task(self._worker_loop(worker, queue))
            for worker, queue in zip(self._workers, self._queues)
        ]
        if self.config.flush_interval_s is not None:
            self._flusher = asyncio.create_task(self._flush_loop())
        self._started = True
        if self._started_at is None:
            self._started_at = self._clock()

    async def stop(self) -> None:
        """Drain everything, then tear the tasks down."""
        if not self._started:
            return
        await self.drain()
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            self._flusher = None
        for queue in self._queues:
            queue.put_nowait(None)
        await asyncio.gather(*self._tasks)
        self._tasks = []
        self._queues = []
        self._started = False

    async def __aenter__(self) -> "IngestionService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- tenants ------------------------------------------------------------

    def register_tenant(
        self,
        deployment_id: str,
        program_version: str,
        program: Program,
        platform: Platform,
        options: Optional[OnlineOptions] = None,
        layout: Optional[ProgramLayout] = None,
        truth: Optional[Mapping[str, Sequence[float]]] = None,
    ) -> TenantKey:
        """Open an estimator stream for one ``(deployment, version)`` pair.

        When the service runs with :attr:`ServiceConfig.health`, each tenant
        gets its own :class:`~repro.obs.health.EstimatorHealthMonitor`;
        ``truth`` (per-procedure ground-truth branch probabilities, known for
        simulated fleets) additionally enables the CI-calibration audit.
        """
        tenant = TenantKey(deployment_id, program_version)
        if tenant in self._registry:
            raise ServeError(f"tenant {tenant} already registered")
        opts = options or OnlineOptions()
        monitor = None
        if self.config.health is not None:
            monitor = EstimatorHealthMonitor(
                config=self.config.health,
                source=str(tenant),
                truth=truth,
                clock=self._clock,
            )
        self._registry[tenant] = _Registration(
            program=program,
            platform=platform,
            options=opts,
            layout=layout,
            monitor=monitor,
        )
        self._tenant_stats[tenant] = TenantStats()
        worker = self._workers[self._router.worker_for(tenant)]
        worker.adopt(tenant, program, platform, options=opts, layout=layout)
        if monitor is not None:
            worker.estimator(tenant).attach_health(monitor)
        obs.inc("serve.tenants_registered")
        return tenant

    @property
    def tenants(self) -> tuple[TenantKey, ...]:
        return tuple(sorted(self._registry))

    def _registration(self, tenant: TenantKey) -> _Registration:
        registration = self._registry.get(tenant)
        if registration is None:
            raise ProtocolError("unknown-tenant", f"no tenant {tenant} registered")
        return registration

    # -- ingest hot path ----------------------------------------------------

    async def submit(self, upload: ShardUpload) -> Receipt:
        """Accept or defer one shard; never blocks on absorption.

        Raises :class:`~repro.errors.ProtocolError` (``unknown-tenant``)
        for unregistered tenants — a routing failure, not a receipt.
        """
        self._require_started()
        tenant = upload.tenant
        registration = self._registration(tenant)
        stats = self._tenant_stats[tenant]
        with obs.span(
            "serve.ingest",
            tenant=str(tenant),
            mote=upload.mote_id,
            seq=upload.seq,
            causal=upload.causal_id,
        ):
            budget = registration.options.budget
            if budget is not None and budget.exhausted(registration.accepted_counts):
                return self._defer(tenant, stats, "budget-exhausted")
            if registration.in_flight >= self.config.max_backlog:
                return self._defer(tenant, stats, "backlog-full")
            for name, xs in upload.samples.items():
                registration.accepted_counts[name] = registration.accepted_counts.get(
                    name, 0
                ) + int(xs.size)
            registration.in_flight += 1
            stats.accepted += 1
            stats.samples += upload.n_samples
            obs.inc("serve.shards_accepted")
            obs.inc(f"serve.tenant.{tenant}.accepted")
            batch = self._batcher.add(upload, self._clock())
        if batch is not None:
            self._enqueue(tenant, batch)
            # Yield once so the owning worker can start on the batch now
            # rather than after the submit burst — keeps ingest latency
            # honest and the backlog bounded under sustained load.
            await asyncio.sleep(0)
        return Receipt(
            status="accepted", tenant=tenant, pending=registration.in_flight
        )

    def _defer(self, tenant: TenantKey, stats: TenantStats, reason: str) -> Receipt:
        stats.deferred += 1
        obs.inc("serve.shards_deferred")
        obs.inc(f"serve.tenant.{tenant}.deferred")
        return Receipt(
            status="deferred",
            tenant=tenant,
            pending=self._registry[tenant].in_flight,
            reason=reason,
            retry_after_s=self.config.retry_after_s,
        )

    def _enqueue(self, tenant: TenantKey, batch) -> None:
        self._queues[self._router.worker_for(tenant)].put_nowait((tenant, batch))

    async def _worker_loop(self, worker: EstimatorWorker, queue: asyncio.Queue) -> None:
        while True:
            job = await queue.get()
            try:
                if job is None:
                    return
                tenant, batch = job
                self._record(worker.absorb(tenant, batch))
            finally:
                queue.task_done()

    def _record(self, result: AbsorbResult) -> None:
        registration = self._registry[result.tenant]
        registration.in_flight -= result.n_shards
        stats = self._tenant_stats[result.tenant]
        stats.batches += 1
        self._latencies.extend(result.latencies_s)
        registration.latencies_s.extend(result.latencies_s)
        if registration.monitor is not None:
            self._check_slo(result.tenant, registration)

    def _check_slo(self, tenant: TenantKey, registration: _Registration) -> None:
        """Evaluate the tenant's serve SLOs; emit edge-triggered alerts.

        Runs after every absorbed batch (drift/coverage checks already ran
        inside the estimator's absorb).  Each SLO alerts once per breach
        episode: crossing back under the threshold re-arms it.
        """
        health = self.config.health
        monitor = registration.monitor
        assert health is not None and monitor is not None
        stats = self._tenant_stats[tenant]
        if stats.accepted < health.min_slo_shards:
            return
        checks: list[tuple[str, float, float]] = []
        if health.slo_p99_ms is not None and registration.latencies_s:
            lat = np.asarray(registration.latencies_s, dtype=float) * 1e3
            checks.append(
                ("slo-latency", float(np.percentile(lat, 99)), health.slo_p99_ms)
            )
        if health.slo_backlog_frac is not None:
            frac = registration.in_flight / self.config.max_backlog
            checks.append(("slo-backlog", frac, health.slo_backlog_frac))
        if health.slo_deferral_rate is not None:
            total = stats.accepted + stats.deferred
            if total:
                checks.append(
                    ("slo-deferral", stats.deferred / total, health.slo_deferral_rate)
                )
        for kind, value, threshold in checks:
            breached = value > threshold
            if breached and not registration.slo_breached.get(kind, False):
                monitor.emit(
                    kind,
                    "critical",
                    value=value,
                    threshold=threshold,
                    detail=f"{kind} breached for {tenant}",
                )
            registration.slo_breached[kind] = breached

    def _slo_state(self, tenant: TenantKey, registration: _Registration) -> dict:
        """The tenant's live SLO readout for the stats/health embeds."""
        stats = self._tenant_stats[tenant]
        total = stats.accepted + stats.deferred
        state: dict = {
            "state": "breached"
            if any(registration.slo_breached.values())
            else "ok",
            "backlog_frac": registration.in_flight / self.config.max_backlog,
            "deferral_rate": stats.deferred / total if total else 0.0,
        }
        if registration.latencies_s:
            lat = np.asarray(registration.latencies_s, dtype=float) * 1e3
            state["p99_ms"] = float(np.percentile(lat, 99))
        return state

    async def _flush_loop(self) -> None:
        interval = self.config.flush_interval_s
        assert interval is not None
        while True:
            await asyncio.sleep(interval)
            for tenant, batch in self._batcher.take_aged(self._clock(), interval):
                self._enqueue(tenant, batch)

    async def drain(self) -> None:
        """Flush every buffered shard and wait for all absorption to finish."""
        self._require_started()
        for tenant, batch in self._batcher.take_all():
            self._enqueue(tenant, batch)
        await asyncio.gather(*(queue.join() for queue in self._queues))

    def _require_started(self) -> None:
        if not self._started:
            raise ServeError("service not started (use `async with` or start())")

    # -- queries / stats ----------------------------------------------------

    def query(
        self, tenant: TenantKey, trace_id: Optional[str] = None
    ) -> TenantEstimate:
        """The tenant's estimate as of the last absorbed batch."""
        self._registration(tenant)
        self._queries += 1
        attrs = {"tenant": str(tenant)}
        if trace_id is not None:
            attrs["causal"] = trace_id
        with obs.span("serve.query", **attrs):
            estimator = self._workers[self._router.worker_for(tenant)].estimator(tenant)
            snapshot = snapshot_estimate(
                tenant, estimator, pending=self._registry[tenant].in_flight
            )
        obs.inc("serve.queries")
        return snapshot

    def health_monitors(self) -> dict[str, EstimatorHealthMonitor]:
        """Per-tenant health monitors, tenant-sorted (empty when health is off)."""
        return {
            str(tenant): registration.monitor
            for tenant, registration in sorted(self._registry.items())
            if registration.monitor is not None
        }

    def alert_events(self) -> list[AlertEvent]:
        """Every health alert emitted so far, tenant-sorted then in emit order."""
        events: list[AlertEvent] = []
        for monitor in self.health_monitors().values():
            events.extend(monitor.alerts)
        return events

    def count_rejected(self) -> None:
        """Tally one structurally rejected request (protocol violation)."""
        self._rejected += 1
        obs.inc("serve.shards_rejected")

    def latency_percentiles(self) -> dict[str, float]:
        """Ingest latency (submit → absorbed) percentiles over all shards."""
        if not self._latencies:
            return {"p50_ms": 0.0, "p90_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
        lat = np.asarray(self._latencies, dtype=float) * 1e3
        return {
            "p50_ms": float(np.percentile(lat, 50)),
            "p90_ms": float(np.percentile(lat, 90)),
            "p99_ms": float(np.percentile(lat, 99)),
            "max_ms": float(lat.max()),
        }

    def stats_payload(self) -> dict:
        """The ``stats`` wire response (also the metrics-file serve embed)."""
        tenants = {}
        for tenant in sorted(self._tenant_stats):
            stats = self._tenant_stats[tenant]
            tenants[str(tenant)] = {
                "accepted": stats.accepted,
                "deferred": stats.deferred,
                "samples": stats.samples,
                "batches": stats.batches,
            }
        totals = {
            "accepted": sum(s.accepted for s in self._tenant_stats.values()),
            "deferred": sum(s.deferred for s in self._tenant_stats.values()),
            "rejected": self._rejected,
            "samples": sum(s.samples for s in self._tenant_stats.values()),
            "batches": sum(s.batches for s in self._tenant_stats.values()),
            "queries": self._queries,
        }
        payload = {
            "op": "stats",
            "schema": PROTOCOL_VERSION,
            "workers": self._router.n_workers,
            "uptime_s": (
                0.0
                if self._started_at is None
                else max(self._clock() - self._started_at, 0.0)
            ),
            "totals": totals,
            "tenants": tenants,
            "latency": self.latency_percentiles(),
        }
        health = {}
        for tenant in sorted(self._registry):
            registration = self._registry[tenant]
            if registration.monitor is None:
                continue
            summary = registration.monitor.summary()
            summary["slo"] = self._slo_state(tenant, registration)
            health[str(tenant)] = summary
        if health:
            payload["health"] = health
        return payload

    # -- rebalance / handoff ------------------------------------------------

    async def rebalance(self, n_workers: int) -> int:
        """Re-shard to ``n_workers`` via lossless checkpoint handoff.

        Queued absorption finishes first (so every checkpoint reflects all
        released batches), then each moving tenant's estimator is
        checkpointed on its old worker and resumed on its new one.  Shards
        still buffered in the batcher are untouched — batch boundaries
        survive, which is what keeps the post-rebalance trajectory
        bit-identical to an uninterrupted run.  Returns the number of
        tenants moved.
        """
        self._require_started()
        await asyncio.gather(*(queue.join() for queue in self._queues))
        plan = self._router.plan_rebalance(n_workers, list(self._registry))
        handoffs = []
        for tenant, old, _new in plan.moves:
            runtime, checkpoint = self._workers[old].release(tenant)
            handoffs.append((tenant, runtime, checkpoint))
        if n_workers > len(self._workers):
            self._workers.extend(
                EstimatorWorker(i, self._clock)
                for i in range(len(self._workers), n_workers)
            )
            for _ in range(n_workers - len(self._queues)):
                queue: asyncio.Queue = asyncio.Queue()
                self._queues.append(queue)
                self._tasks.append(
                    asyncio.create_task(
                        self._worker_loop(self._workers[len(self._queues) - 1], queue)
                    )
                )
        elif n_workers < len(self._workers):
            for index in range(n_workers, len(self._workers)):
                if self._workers[index].tenants:
                    raise ServeError(
                        f"worker {index} still owns tenants after planning"
                    )
                self._queues[index].put_nowait(None)
            await asyncio.gather(*self._tasks[n_workers:])
            self._workers = self._workers[:n_workers]
            self._queues = self._queues[:n_workers]
            self._tasks = self._tasks[:n_workers]
        self._router.apply(plan)
        for tenant, runtime, checkpoint in handoffs:
            worker = self._workers[self._router.worker_for(tenant)]
            worker.adopt(
                tenant,
                runtime.program,
                runtime.platform,
                options=runtime.options,
                layout=runtime.layout,
                checkpoint=checkpoint,
            )
            monitor = self._registry[tenant].monitor
            if monitor is not None:
                # Monitors are service-owned and not checkpointed: the same
                # instance re-attaches to the resumed estimator, keeping
                # alert history and detector state across the handoff.
                worker.estimator(tenant).attach_health(monitor)
        obs.inc("serve.rebalances")
        obs.inc("serve.tenants_moved", len(handoffs))
        return len(handoffs)

    # -- wire protocol ------------------------------------------------------

    async def handle_line(self, line: str) -> dict:
        """Serve one JSONL request; every outcome is a JSON-able response."""
        try:
            request = parse_request_line(line)
        except ProtocolError as exc:
            self.count_rejected()
            return error_response(exc)
        try:
            if isinstance(request, ShardUpload):
                return (await self.submit(request)).to_json()
            if isinstance(request, QueryRequest):
                return self.query(request.tenant, trace_id=request.trace_id).to_json()
            assert isinstance(request, StatsRequest)
            return self.stats_payload()
        except ProtocolError as exc:
            self.count_rejected()
            return error_response(exc)

    async def serve_stream(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One JSONL connection: request line in, response line out.

        Pass this to :func:`asyncio.start_server` to expose the service on
        a socket; the load generator drives :meth:`submit` in-process
        instead (same code path minus the transport).
        """
        from repro.serve.protocol import encode

        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                response = await self.handle_line(raw.decode("utf-8"))
                writer.write((encode(response) + "\n").encode("utf-8"))
                await writer.drain()
        finally:
            writer.close()
