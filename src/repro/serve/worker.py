"""Estimator workers: the absorption half of the ingestion service.

Each worker owns the :class:`~repro.core.online.OnlineEstimator` instances
of the tenants routed to it and does exactly one thing with them: absorb
released micro-batches via
:meth:`~repro.core.online.OnlineEstimator.absorb_batch` (one warm-started
EM sweep per batch).  Everything stateful about a tenant lives in its
estimator, which is why worker topology is invisible in the output —
moving a tenant between workers is
:meth:`~repro.core.online.OnlineEstimator.checkpoint` on one side and
``resume`` on the other, and the estimate continues bit-for-bit.

Workers are plain synchronous objects; the service's asyncio loop decides
*when* they run.  That keeps every absorption observable (``serve.absorb``
spans, per-batch latency histograms) and testable without an event loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro import obs
from repro.core.online import (
    OnlineCheckpoint,
    OnlineEstimator,
    OnlineOptions,
    ShardEstimate,
)
from repro.errors import ServeError
from repro.ir.program import Program
from repro.mote.platform import Platform
from repro.placement.layout import ProgramLayout
from repro.serve.batcher import PendingShard
from repro.serve.protocol import TenantKey

__all__ = ["TenantRuntime", "AbsorbResult", "EstimatorWorker"]


@dataclass
class TenantRuntime:
    """One tenant's estimator plus the bindings needed to rebuild it."""

    program: Program
    platform: Platform
    options: OnlineOptions
    layout: Optional[ProgramLayout]
    estimator: OnlineEstimator


@dataclass(frozen=True)
class AbsorbResult:
    """What one micro-batch absorption produced."""

    tenant: TenantKey
    point: ShardEstimate
    n_shards: int
    n_samples: int
    latencies_s: tuple[float, ...]  # submit -> absorbed, per shard in the batch


class EstimatorWorker:
    """Owns per-tenant estimators and absorbs their micro-batches."""

    def __init__(
        self, index: int, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self.index = index
        self._clock = clock
        self._tenants: dict[TenantKey, TenantRuntime] = {}

    # -- tenant lifecycle ---------------------------------------------------

    def adopt(
        self,
        tenant: TenantKey,
        program: Program,
        platform: Platform,
        options: Optional[OnlineOptions] = None,
        layout: Optional[ProgramLayout] = None,
        checkpoint: Optional[OnlineCheckpoint] = None,
    ) -> None:
        """Start (or, given a checkpoint, continue) serving ``tenant`` here."""
        if tenant in self._tenants:
            raise ServeError(f"worker {self.index} already serves {tenant}")
        opts = options or OnlineOptions()
        if checkpoint is not None:
            estimator = OnlineEstimator.resume(
                program, platform, checkpoint, options=opts, layout=layout
            )
        else:
            estimator = OnlineEstimator(program, platform, options=opts, layout=layout)
        self._tenants[tenant] = TenantRuntime(
            program=program,
            platform=platform,
            options=opts,
            layout=layout,
            estimator=estimator,
        )

    def release(self, tenant: TenantKey) -> tuple[TenantRuntime, OnlineCheckpoint]:
        """Stop serving ``tenant``; return its bindings + final checkpoint.

        The pair is everything the next worker's :meth:`adopt` needs for a
        lossless handoff.
        """
        runtime = self._tenants.pop(tenant, None)
        if runtime is None:
            raise ServeError(f"worker {self.index} does not serve {tenant}")
        return runtime, runtime.estimator.checkpoint()

    def owns(self, tenant: TenantKey) -> bool:
        return tenant in self._tenants

    @property
    def tenants(self) -> tuple[TenantKey, ...]:
        return tuple(sorted(self._tenants))

    def estimator(self, tenant: TenantKey) -> OnlineEstimator:
        runtime = self._tenants.get(tenant)
        if runtime is None:
            raise ServeError(f"worker {self.index} does not serve {tenant}")
        return runtime.estimator

    # -- absorption ---------------------------------------------------------

    def absorb(self, tenant: TenantKey, batch: list[PendingShard]) -> AbsorbResult:
        """Fold one released micro-batch into ``tenant``'s estimator.

        One :meth:`~repro.core.online.OnlineEstimator.absorb_batch` call —
        i.e. one EM sweep — regardless of batch size; the ``serve.absorb``
        span and the ``serve.absorb_latency_s`` histogram carry the cost.
        """
        runtime = self._tenants.get(tenant)
        if runtime is None:
            raise ServeError(f"worker {self.index} does not serve {tenant}")
        if not batch:
            raise ServeError(f"empty micro-batch for {tenant}")
        shards = [pending.upload.samples for pending in batch]
        n_samples = sum(pending.upload.n_samples for pending in batch)
        with obs.span(
            "serve.absorb",
            tenant=str(tenant),
            worker=self.index,
            shards=len(batch),
            samples=n_samples,
            causal=[pending.upload.causal_id for pending in batch],
        ) as handle:
            point = runtime.estimator.absorb_batch(shards)
            handle.set(em_iterations=point.em_iterations, converged=point.converged)
        done = self._clock()
        latencies = tuple(done - pending.submitted_at for pending in batch)
        obs.inc("serve.batches_absorbed")
        obs.observe("serve.batch_size", float(len(batch)))
        for latency in latencies:
            obs.observe("serve.absorb_latency_s", latency)
        return AbsorbResult(
            tenant=tenant,
            point=point,
            n_shards=len(batch),
            n_samples=n_samples,
            latencies_s=latencies,
        )
