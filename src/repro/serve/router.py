"""Tenant → worker routing, stable across processes and restarts.

The router answers one question: which estimator worker owns a tenant's
:class:`~repro.core.online.OnlineEstimator`.  The answer must be

* **stable** — the same tenant maps to the same worker for the life of a
  topology, so its shard stream is absorbed by one estimator in order;
* **process-independent** — derived from the tenant key through SHA-256,
  never :func:`hash` (which is salted per process), so a restarted or
  re-sharded service recomputes the identical assignment; and
* **rebalance-aware** — changing the worker count yields an explicit
  :class:`RebalancePlan` of tenants that must move, each via checkpoint
  handoff (:meth:`repro.core.online.OnlineEstimator.checkpoint` /
  ``resume``), so a topology change is lossless and deterministic.

Pinning (:meth:`ShardRouter.pin`) overrides the hash for individual
tenants; the drain path uses it to move a tenant off a worker without
touching anything else.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ServeError
from repro.serve.protocol import TenantKey

__all__ = ["ShardRouter", "RebalancePlan"]


@dataclass(frozen=True)
class RebalancePlan:
    """Which tenants move where when the topology changes."""

    n_workers: int
    moves: tuple[tuple[TenantKey, int, int], ...]  # (tenant, old worker, new worker)


def _stable_worker(tenant: TenantKey, n_workers: int) -> int:
    digest = hashlib.sha256(
        f"{tenant.deployment_id}\x00{tenant.program_version}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little") % n_workers


class ShardRouter:
    """Stable hash routing with explicit pins for drained tenants."""

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ServeError(f"router needs >= 1 worker, got {n_workers}")
        self.n_workers = n_workers
        self._pins: dict[TenantKey, int] = {}

    def worker_for(self, tenant: TenantKey) -> int:
        """The worker index owning ``tenant`` under the current topology."""
        pinned = self._pins.get(tenant)
        if pinned is not None:
            return pinned
        return _stable_worker(tenant, self.n_workers)

    def pin(self, tenant: TenantKey, worker: int) -> None:
        """Force ``tenant`` onto ``worker`` (used by drain/handoff)."""
        if not 0 <= worker < self.n_workers:
            raise ServeError(
                f"cannot pin {tenant} to worker {worker}; topology has "
                f"{self.n_workers} worker(s)"
            )
        self._pins[tenant] = worker

    def plan_rebalance(
        self, n_workers: int, tenants: list[TenantKey]
    ) -> RebalancePlan:
        """The moves required to go from this topology to ``n_workers``.

        Pins are dropped by a rebalance — the new topology's stable hash is
        the single source of truth again — so the plan compares each
        tenant's *current* worker (pins included) with its hash under the
        new count.
        """
        if n_workers < 1:
            raise ServeError(f"cannot rebalance to {n_workers} workers")
        moves = []
        for tenant in sorted(tenants):
            old = self.worker_for(tenant)
            new = _stable_worker(tenant, n_workers)
            if old != new or self.n_workers != n_workers:
                moves.append((tenant, old, new))
        return RebalancePlan(n_workers=n_workers, moves=tuple(moves))

    def apply(self, plan: RebalancePlan) -> None:
        """Adopt a plan's topology: new worker count, pins cleared."""
        self.n_workers = plan.n_workers
        self._pins.clear()
