"""``repro.serve`` — fleet-scale ingestion for streaming tomography.

The serving layer turns the streaming estimator
(:class:`~repro.core.online.OnlineEstimator`) into a service: thousands of
simulated motes upload timing shards; the service routes each shard to its
tenant's estimator by ``(deployment_id, program_version)``, micro-batches
absorption so EM cost amortizes across shards, applies backpressure from
the tenant's :class:`~repro.profiling.budget.SampleBudget`, and answers
queries with per-procedure estimates and Wald CI half-widths.

Modules
-------

:mod:`~repro.serve.protocol`
    The JSONL wire protocol: requests, receipts, structured error codes.
:mod:`~repro.serve.router`
    SHA-256 stable tenant → worker routing with explicit rebalance plans.
:mod:`~repro.serve.batcher`
    Count/age micro-batching; batch composition is worker-count-independent.
:mod:`~repro.serve.worker`
    Estimator ownership + batch absorption (one EM sweep per batch).
:mod:`~repro.serve.query`
    Estimate snapshots (theta, half-widths, convergence verdict).
:mod:`~repro.serve.service`
    The asyncio :class:`IngestionService` tying it all together.
:mod:`~repro.serve.loadgen`
    The simulated fleet driver / load generator (``repro-serve`` CLI).

Everything is deterministic where it matters: for a given upload sequence
the final estimates are bit-identical at any worker count, and rebalancing
mid-stream (checkpoint handoff) changes nothing.  See ``docs/serving.md``.
"""

from repro.serve.batcher import MicroBatcher, PendingShard
from repro.serve.loadgen import (
    FleetReport,
    FleetSpec,
    TenantSpec,
    build_uploads,
    default_fleet,
    run_fleet,
)
from repro.serve.protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    QueryRequest,
    Receipt,
    ShardUpload,
    StatsRequest,
    TenantKey,
    encode,
    error_response,
    parse_request,
    parse_request_line,
)
from repro.serve.query import TenantEstimate, snapshot_estimate
from repro.serve.router import RebalancePlan, ShardRouter
from repro.serve.service import IngestionService, ServiceConfig, TenantStats
from repro.serve.worker import AbsorbResult, EstimatorWorker

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "TenantKey",
    "ShardUpload",
    "QueryRequest",
    "StatsRequest",
    "Receipt",
    "parse_request",
    "parse_request_line",
    "error_response",
    "encode",
    "MicroBatcher",
    "PendingShard",
    "ShardRouter",
    "RebalancePlan",
    "EstimatorWorker",
    "AbsorbResult",
    "TenantEstimate",
    "snapshot_estimate",
    "IngestionService",
    "ServiceConfig",
    "TenantStats",
    "TenantSpec",
    "FleetSpec",
    "FleetReport",
    "default_fleet",
    "build_uploads",
    "run_fleet",
]
