"""Per-tenant micro-batching of accepted shards.

Absorbing one shard costs one warm-started EM sweep
(:meth:`repro.core.online.OnlineEstimator.absorb`); at fleet rates that
sweep must be amortized.  The batcher buffers accepted uploads **per
tenant** and releases them as batches when either trigger fires:

* **count** — a tenant's pending backlog reaches ``max_batch`` (checked on
  every add, so the common high-rate path never waits on a timer), or
* **age** — the oldest pending shard has waited ``flush_interval_s``
  (checked by the service's flusher task, so a trickle-rate tenant still
  sees bounded staleness).

Batch composition is a pure function of each tenant's upload order and
``max_batch``: the batcher holds no clocks and no randomness, which is
what makes service output bit-identical at any worker count — and why
checkpoint handoff leaves pending shards *in the batcher* rather than
force-flushing partial batches (an early flush would change the batch
boundaries and with them the refit trajectory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ServeError
from repro.serve.protocol import ShardUpload, TenantKey

__all__ = ["PendingShard", "MicroBatcher"]


@dataclass(frozen=True)
class PendingShard:
    """One accepted upload plus its submit timestamp (for ingest latency)."""

    upload: ShardUpload
    submitted_at: float


class MicroBatcher:
    """Order-preserving per-tenant shard buffer with two flush triggers."""

    def __init__(self, max_batch: int) -> None:
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = max_batch
        self._pending: dict[TenantKey, list[PendingShard]] = {}

    def add(
        self, upload: ShardUpload, submitted_at: float
    ) -> Optional[list[PendingShard]]:
        """Buffer one accepted upload; return a full batch if the add filled one."""
        queue = self._pending.setdefault(upload.tenant, [])
        queue.append(PendingShard(upload=upload, submitted_at=submitted_at))
        if len(queue) >= self.max_batch:
            del self._pending[upload.tenant]
            return queue
        return None

    def take_aged(
        self, now: float, flush_interval_s: float
    ) -> list[tuple[TenantKey, list[PendingShard]]]:
        """Release every tenant whose oldest shard has waited long enough."""
        ready = []
        for tenant in sorted(self._pending):
            queue = self._pending[tenant]
            if queue and now - queue[0].submitted_at >= flush_interval_s:
                ready.append((tenant, queue))
        for tenant, _ in ready:
            del self._pending[tenant]
        return ready

    def take_all(self) -> list[tuple[TenantKey, list[PendingShard]]]:
        """Release everything (end-of-stream drain), in tenant order."""
        batches = [(tenant, self._pending[tenant]) for tenant in sorted(self._pending)]
        self._pending.clear()
        return batches

    def pending_count(self, tenant: TenantKey) -> int:
        """How many shards ``tenant`` has buffered (0 if none)."""
        return len(self._pending.get(tenant, ()))

    def pending_samples(self, tenant: TenantKey) -> dict[str, int]:
        """Per-procedure sample counts buffered for ``tenant``.

        The budget check charges these *before* absorption: a tenant must
        not sail past its :class:`~repro.profiling.budget.SampleBudget`
        just because the overflow is still sitting in a batch.
        """
        counts: dict[str, int] = {}
        for pending in self._pending.get(tenant, ()):
            for name, xs in pending.upload.samples.items():
                counts[name] = counts.get(name, 0) + int(xs.size)
        return counts
