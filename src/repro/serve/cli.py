"""CLI for the ingestion service (installed as ``repro-serve``).

Examples::

    repro-serve --tenants 2 --motes 50 --shards 2          # bounded burst
    repro-serve --tenants 6 --motes 100 --shards 10 --workers 4 --json run.json
    repro-serve --tenants 2 --motes 100 --shards 1 \\
        --check-throughput 1000 --check-p99-ms 250         # CI gate
    repro-serve --tenants 2 --motes 20 --shards 2 \\
        --trace serve_trace.jsonl --metrics serve_metrics.json
    repro-serve --tenants 1 --motes 8 --shards 40 --samples-per-proc 20 \\
        --health --drift-at-shard 20 --alert-log alerts.jsonl  # drift drill

The command builds a simulated fleet (:func:`repro.serve.loadgen.default_fleet`
over the six benchmark workloads), drives it through an in-process
:class:`~repro.serve.service.IngestionService`, and prints sustained
throughput plus ingest-latency percentiles.  ``--check-throughput`` /
``--check-p99-ms`` turn the run into a pass/fail gate (exit 1 on miss).

Telemetry mirrors ``repro-experiments``: ``--trace PATH`` exports the span
timeline (``serve.ingest`` / ``serve.absorb`` / ``serve.query`` spans),
``--metrics PATH`` writes the metrics snapshot with the service's stats
embedded under the ``serve`` key
(validated by :func:`repro.obs.validate.validate_serve_stats`).

``--health`` attaches an estimator-health monitor to every tenant: drift
detectors and a CI-calibration audit run alongside absorption, per-tenant
summaries land in the stats payload (and ``--metrics`` gains a ``health``
report), and ``--alert-log PATH`` exports every alert as JSONL.
``--drift-at-shard N`` injects a mid-stream regime change — the drill the
detectors are supposed to catch (``repro-health --check --expect-drift``
gates on it in CI).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.faults.model import FaultModel
from repro.obs import (
    HealthConfig,
    MetricsRegistry,
    Tracer,
    build_health_report,
    metrics_active,
    tracing,
    write_alert_log,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from repro.profiling.budget import SampleBudget
from repro.serve.loadgen import FleetReport, default_fleet, run_fleet
from repro.serve.service import IngestionService, ServiceConfig

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Drive a simulated mote fleet through the tomography "
        "ingestion service and report throughput + latency.",
    )
    fleet = parser.add_argument_group("fleet")
    fleet.add_argument(
        "--tenants", type=int, default=2,
        help="tenant count; workloads cycle through the six-app suite (default: 2)",
    )
    fleet.add_argument(
        "--motes", type=int, default=8, help="motes per tenant (default: 8)"
    )
    fleet.add_argument(
        "--shards", type=int, default=4, help="shards each mote uploads (default: 4)"
    )
    fleet.add_argument(
        "--samples-per-proc", type=int, default=4,
        help="timing samples per procedure per shard (default: 4)",
    )
    fleet.add_argument("--seed", type=int, default=2015, help="fleet RNG seed")
    fleet.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="per-tenant SampleBudget total; over-budget uploads defer (default: none)",
    )
    fleet.add_argument(
        "--fault-drop", type=float, default=0.0,
        help="per-record uplink drop rate (default: 0)",
    )
    fleet.add_argument(
        "--fault-corrupt", type=float, default=0.0,
        help="per-record uplink corruption rate (default: 0)",
    )
    fleet.add_argument(
        "--fault-glitch", type=float, default=0.0,
        help="per-record timer-glitch rate (default: 0)",
    )
    fleet.add_argument(
        "--drift-at-shard", type=int, default=None, metavar="N",
        help="inject a workload regime change at shard round N for every "
        "tenant (uniform-scenario pool; default: no drift)",
    )
    service = parser.add_argument_group("service")
    service.add_argument(
        "--workers", type=int, default=2, help="estimator workers (default: 2)"
    )
    service.add_argument(
        "--batch", type=int, default=8,
        help="micro-batch size: shards per EM refit (default: 8)",
    )
    service.add_argument(
        "--max-backlog", type=int, default=256,
        help="per-tenant unabsorbed-shard cap before deferral (default: 256)",
    )
    service.add_argument(
        "--flush-interval", type=float, default=None, metavar="SECONDS",
        help="age-based flush for partial batches (default: off — count-only)",
    )
    health = parser.add_argument_group("health")
    health.add_argument(
        "--health", action="store_true",
        help="attach an estimator-health monitor to every tenant (drift "
        "detectors, CI-calibration audit, SLO alerts)",
    )
    health.add_argument(
        "--alert-log", type=Path, default=None, metavar="PATH", dest="alert_log",
        help="write every health alert as JSONL to PATH (implies --health)",
    )
    gates = parser.add_argument_group("gates")
    gates.add_argument(
        "--check-throughput", type=float, default=None, metavar="SHARDS_PER_S",
        help="fail (exit 1) if sustained ingest falls below this rate",
    )
    gates.add_argument(
        "--check-p99-ms", type=float, default=None, metavar="MS",
        help="fail (exit 1) if p99 ingest latency exceeds this",
    )
    artifacts = parser.add_argument_group("artifacts")
    artifacts.add_argument(
        "--json", type=Path, default=None, metavar="PATH", dest="json_path",
        help="write the full fleet report (stats, latency, estimates) to PATH",
    )
    artifacts.add_argument(
        "--trace", type=Path, default=None, metavar="PATH", dest="trace_path",
        help="export the run's span timeline to PATH (see --trace-format)",
    )
    artifacts.add_argument(
        "--trace-format", choices=("jsonl", "chrome"), default="jsonl",
        help="trace export format (default: jsonl)",
    )
    artifacts.add_argument(
        "--metrics", type=Path, default=None, metavar="PATH", dest="metrics_path",
        help="write the metrics snapshot with the service stats embedded "
        "under the 'serve' key",
    )
    return parser


def _fault_model(args: argparse.Namespace) -> Optional[FaultModel]:
    if not (args.fault_drop or args.fault_corrupt or args.fault_glitch):
        return None
    return FaultModel(
        radio_loss=args.fault_drop,
        radio_corrupt=args.fault_corrupt,
        timer_glitch=args.fault_glitch,
    )


def _print_report(report: FleetReport) -> None:
    stats = report.stats["totals"]
    print(
        f"fleet: {len(report.estimates)} tenant(s), "
        f"{report.shards_sent} shards, {report.samples_sent} samples "
        f"(uptime {report.stats['uptime_s']:.2f}s)"
    )
    print(
        f"ingest: {report.shards_per_s:.0f} shards/s over {report.wall_s:.2f}s "
        f"(accepted {report.shards_accepted}, deferred {report.shards_deferred}, "
        f"rejected {stats['rejected']})"
    )
    lat = report.latency
    print(
        f"latency: p50 {lat['p50_ms']:.1f}ms  p90 {lat['p90_ms']:.1f}ms  "
        f"p99 {lat['p99_ms']:.1f}ms  max {lat['max_ms']:.1f}ms"
    )
    for name in sorted(report.estimates):
        estimate = report.estimates[name]
        print(
            f"  {name}: {estimate.total_samples} samples in "
            f"{estimate.shards_absorbed} batches, max CI half-width "
            f"{estimate.max_half_width:.3f}"
            + (" (converged)" if estimate.converged else "")
        )
    for name, summary in sorted(report.stats.get("health", {}).items()):
        coverage = summary["coverage"]
        print(
            f"  health {name}: drift score {summary['drift_score']:.2f} "
            f"({summary['drift_alarms']} alarm(s)), coverage "
            + ("n/a" if coverage is None else f"{coverage:.3f}")
            + f" over {summary['coverage_checks']} checks, "
            f"slo {summary['slo']['state']}, {summary['alerts']} alert(s)"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    for name, value in (
        ("--tenants", args.tenants), ("--motes", args.motes),
        ("--shards", args.shards), ("--samples-per-proc", args.samples_per_proc),
        ("--workers", args.workers), ("--batch", args.batch),
    ):
        if value < 1:
            print(f"{name} must be >= 1, got {value}", file=sys.stderr)
            return 2
    if args.drift_at_shard is not None and args.drift_at_shard < 1:
        print(
            f"--drift-at-shard must be >= 1, got {args.drift_at_shard}",
            file=sys.stderr,
        )
        return 2
    for flag, path in (
        ("--json", args.json_path),
        ("--trace", args.trace_path),
        ("--metrics", args.metrics_path),
        ("--alert-log", args.alert_log),
    ):
        if path is not None and not path.parent.is_dir():
            print(f"{flag}: directory does not exist: {path.parent}", file=sys.stderr)
            return 2

    health_on = args.health or args.alert_log is not None
    try:
        fleet = default_fleet(
            n_tenants=args.tenants,
            n_motes=args.motes,
            shards_per_mote=args.shards,
            samples_per_proc=args.samples_per_proc,
            seed=args.seed,
            budget=SampleBudget(max_total=args.budget) if args.budget else None,
            faults=_fault_model(args),
            drift_at_shard=args.drift_at_shard,
        )
        config = ServiceConfig(
            n_workers=args.workers,
            max_batch=args.batch,
            flush_interval_s=args.flush_interval,
            max_backlog=args.max_backlog,
            health=HealthConfig() if health_on else None,
        )
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    registry = MetricsRegistry() if args.metrics_path is not None else None
    tracer = Tracer() if args.trace_path is not None else None
    service = IngestionService(config)
    with contextlib.ExitStack() as stack:
        if registry is not None:
            stack.enter_context(metrics_active(registry))
        if tracer is not None:
            stack.enter_context(tracing(tracer))
        report = asyncio.run(run_fleet(fleet, service=service))

    _print_report(report)

    artifact_error = None
    if args.json_path is not None:
        try:
            args.json_path.write_text(json.dumps(report.to_json(), indent=2) + "\n")
        except OSError as exc:
            artifact_error = f"--json: could not write {args.json_path}: {exc}"
            print(artifact_error, file=sys.stderr)
    if args.trace_path is not None:
        try:
            if args.trace_format == "chrome":
                write_chrome_trace(args.trace_path, tracer.spans)
            else:
                write_jsonl(args.trace_path, tracer.spans)
        except OSError as exc:
            artifact_error = f"--trace: could not write {args.trace_path}: {exc}"
            print(artifact_error, file=sys.stderr)
    if args.metrics_path is not None:
        try:
            health_report = None
            if health_on:
                health_report = build_health_report(
                    report.stats.get("health", {}), alerts=service.alert_events()
                )
            write_metrics(
                args.metrics_path, registry, serve=report.stats, health=health_report
            )
        except OSError as exc:
            artifact_error = f"--metrics: could not write {args.metrics_path}: {exc}"
            print(artifact_error, file=sys.stderr)
    if args.alert_log is not None:
        try:
            write_alert_log(args.alert_log, service.alert_events())
        except OSError as exc:
            artifact_error = f"--alert-log: could not write {args.alert_log}: {exc}"
            print(artifact_error, file=sys.stderr)

    failed = []
    if (
        args.check_throughput is not None
        and report.shards_per_s < args.check_throughput
    ):
        failed.append(
            f"throughput {report.shards_per_s:.0f} shards/s "
            f"< required {args.check_throughput:.0f}"
        )
    if args.check_p99_ms is not None and report.latency["p99_ms"] > args.check_p99_ms:
        failed.append(
            f"p99 latency {report.latency['p99_ms']:.1f}ms "
            f"> allowed {args.check_p99_ms:.1f}ms"
        )
    for message in failed:
        print(f"GATE FAILED: {message}", file=sys.stderr)
    if failed:
        return 1
    return 1 if artifact_error else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
