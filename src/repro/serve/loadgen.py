"""Fleet driver: thousands of simulated motes against the ingestion service.

The load generator stands in for a deployed sensor fleet.  For each tenant
it runs the tenant's workload **once** (the same
:func:`~repro.experiments.common.profiled_run` pipeline the experiments
use) to build a per-procedure *sample pool* — real measured durations from
the simulated mote — then deals shards out of that pool to ``n_motes``
simulated motes.  Every draw comes from a labelled
:func:`~repro.util.rng.derive_rng` stream keyed by
``(seed, "serve", deployment, version, mote, shard)``, so the generated
upload sequence is a pure function of the :class:`FleetSpec` — the same
fleet byte-for-byte on every run, at any service worker count.

Optionally each mote uplinks through a
:class:`~repro.faults.FaultInjector` (:func:`~repro.faults.faulty_samples`),
so the service can be load-tested under packet loss, corruption and timer
glitches too.

:func:`run_fleet` pre-generates all uploads, then measures pure ingestion:
submit + micro-batched absorption + drain, reporting sustained shards/sec
and ingest-latency percentiles in a :class:`FleetReport`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.experiments.common import ExperimentConfig, profiled_run
from repro.core.online import OnlineOptions
from repro.errors import ServeError
from repro.faults.inject import faulty_samples
from repro.faults.model import FaultInjector, FaultModel
from repro.mote.platform import MICAZ_LIKE, Platform
from repro.profiling.budget import SampleBudget
from repro.serve.protocol import ShardUpload, TenantKey
from repro.serve.query import TenantEstimate
from repro.serve.service import IngestionService, ServiceConfig
from repro.util.rng import derive_rng, derive_seed_sequence
from repro.workloads.registry import all_workloads, workload_by_name

__all__ = [
    "TenantSpec",
    "FleetSpec",
    "FleetReport",
    "default_fleet",
    "tenant_pool",
    "tenant_truth",
    "build_uploads",
    "run_fleet",
]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's slice of the fleet.

    ``drift_at_shard`` injects a workload regime change: shard rounds at or
    beyond it deal from a second pool generated under ``drift_scenario``
    (sensor inputs shifted, branch probabilities moved) — the ground truth
    the health monitor's drift detectors are supposed to notice.  The
    default post-onset scenario is ``uniform`` — maximum-entropy inputs, a
    hard regime change; the sinusoidal ``drifting`` scenario averages out
    over a whole pool run and barely moves the pool's duration mix.
    """

    deployment_id: str
    workload: str
    program_version: str = "1.0"
    n_motes: int = 8
    shards_per_mote: int = 4
    samples_per_proc: int = 4
    epsilon: Optional[float] = 0.02
    budget: Optional[SampleBudget] = None
    faults: Optional[FaultModel] = None
    drift_at_shard: Optional[int] = None
    drift_scenario: str = "uniform"

    def __post_init__(self) -> None:
        if self.drift_at_shard is not None and self.drift_at_shard < 1:
            raise ServeError(
                f"drift_at_shard must be >= 1, got {self.drift_at_shard}"
            )

    @property
    def tenant(self) -> TenantKey:
        return TenantKey(self.deployment_id, self.program_version)

    def options(self) -> OnlineOptions:
        return OnlineOptions(epsilon=self.epsilon, budget=self.budget)


@dataclass(frozen=True)
class FleetSpec:
    """The whole simulated fleet: tenants plus shared generation knobs."""

    tenants: tuple[TenantSpec, ...]
    seed: int = 2015
    platform: Platform = MICAZ_LIKE
    scenario: str = "default"
    quick: bool = True  # pool generation only needs sample variety, not scale

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ServeError("a fleet needs at least one tenant")
        keys = [spec.tenant for spec in self.tenants]
        if len(set(keys)) != len(keys):
            raise ServeError("fleet tenants must have distinct (deployment, version)")


@dataclass(frozen=True)
class FleetReport:
    """What one fleet run produced, for gates and the bench history."""

    shards_sent: int
    shards_accepted: int
    shards_deferred: int
    samples_sent: int
    wall_s: float
    shards_per_s: float
    latency: dict[str, float]
    stats: dict
    estimates: dict[str, TenantEstimate]

    def to_json(self) -> dict:
        return {
            "shards_sent": self.shards_sent,
            "shards_accepted": self.shards_accepted,
            "shards_deferred": self.shards_deferred,
            "samples_sent": self.samples_sent,
            "wall_s": self.wall_s,
            "shards_per_s": self.shards_per_s,
            "latency": dict(self.latency),
            "stats": self.stats,
            "estimates": {
                name: estimate.to_json() for name, estimate in self.estimates.items()
            },
        }


def default_fleet(
    n_tenants: int = 6,
    n_motes: int = 8,
    shards_per_mote: int = 4,
    samples_per_proc: int = 4,
    seed: int = 2015,
    budget: Optional[SampleBudget] = None,
    faults: Optional[FaultModel] = None,
    drift_at_shard: Optional[int] = None,
) -> FleetSpec:
    """A fleet cycling through the benchmark suite's six workloads.

    Tenant ``i`` deploys workload ``i mod 6`` as deployment ``site-<i>``;
    every knob not exposed here keeps its :class:`TenantSpec` default.
    ``drift_at_shard`` applies the regime change to every tenant.
    """
    if n_tenants < 1:
        raise ServeError(f"n_tenants must be >= 1, got {n_tenants}")
    names = [spec.name for spec in all_workloads()]
    tenants = tuple(
        TenantSpec(
            deployment_id=f"site-{i}",
            workload=names[i % len(names)],
            n_motes=n_motes,
            shards_per_mote=shards_per_mote,
            samples_per_proc=samples_per_proc,
            budget=budget,
            faults=faults,
            drift_at_shard=drift_at_shard,
        )
        for i in range(n_tenants)
    )
    return FleetSpec(tenants=tenants, seed=seed)


def _pool_seed(fleet: FleetSpec, spec: TenantSpec) -> int:
    """A stable integer seed for one tenant's pool-generation run."""
    seq = derive_seed_sequence(
        fleet.seed, "serve", "pool", spec.deployment_id, spec.program_version
    )
    return int(seq.generate_state(1, dtype=np.uint32)[0])


def _tenant_run(fleet: FleetSpec, spec: TenantSpec, scenario: str):
    """One tenant's pool-generation run under ``scenario``."""
    config = ExperimentConfig(
        platform=fleet.platform,
        seed=_pool_seed(fleet, spec),
        quick=fleet.quick,
        scenario=scenario,
    )
    return profiled_run(workload_by_name(spec.workload), config)


def tenant_pool(
    fleet: FleetSpec, spec: TenantSpec, scenario: Optional[str] = None
) -> dict[str, np.ndarray]:
    """One tenant's per-procedure duration pool (one workload run)."""
    run = _tenant_run(fleet, spec, scenario or fleet.scenario)
    return {
        name: xs.copy() for name, xs in run.dataset.samples.items() if xs.size
    }


def tenant_truth(fleet: FleetSpec, spec: TenantSpec) -> dict[str, np.ndarray]:
    """Ground-truth branch probabilities behind one tenant's *base* pool.

    What the CI-calibration audit holds the served estimates against; under
    an injected drift (``drift_at_shard``) the post-onset regime differs on
    purpose, which is exactly when coverage should degrade and alert.
    """
    return dict(_tenant_run(fleet, spec, fleet.scenario).truth)


def _mote_shard(
    fleet: FleetSpec,
    spec: TenantSpec,
    pool: dict[str, np.ndarray],
    mote: int,
    shard: int,
) -> dict[str, np.ndarray]:
    """Deal one mote's shard out of the tenant pool (labelled RNG stream)."""
    rng = derive_rng(
        fleet.seed, "serve", spec.deployment_id, spec.program_version, mote, shard
    )
    samples = {}
    for name in sorted(pool):
        xs = pool[name]
        idx = rng.integers(0, xs.size, size=spec.samples_per_proc)
        samples[name] = xs[idx].copy()
    return samples


def build_uploads(fleet: FleetSpec) -> list[ShardUpload]:
    """Pre-generate the whole fleet's upload sequence, deterministically.

    The schedule interleaves round-robin — shard round, then tenant, then
    mote — the way a real fleet's uploads arrive shuffled across tenants
    rather than one tenant at a time.  Fault injection (when a tenant has a
    :class:`~repro.faults.FaultModel`) runs per mote on its own derived
    injector, so enabling faults for one tenant never perturbs another's
    stream.  A tenant with ``drift_at_shard`` switches to its
    ``drift_scenario`` pool from that shard round on — same motes, same RNG
    labels, shifted regime.
    """
    pools = {spec.tenant: tenant_pool(fleet, spec) for spec in fleet.tenants}
    drift_pools = {
        spec.tenant: tenant_pool(fleet, spec, scenario=spec.drift_scenario)
        for spec in fleet.tenants
        if spec.drift_at_shard is not None
    }
    injectors: dict[tuple[TenantKey, int], Optional[FaultInjector]] = {}
    for spec in fleet.tenants:
        for mote in range(spec.n_motes):
            if spec.faults is not None and spec.faults.enabled:
                injectors[(spec.tenant, mote)] = FaultInjector.derived(
                    spec.faults,
                    fleet.seed,
                    "serve",
                    spec.deployment_id,
                    spec.program_version,
                    mote,
                )
            else:
                injectors[(spec.tenant, mote)] = None
    cycles_per_tick = fleet.platform.timer.cycles_per_tick
    uploads: list[ShardUpload] = []
    rounds = max(spec.shards_per_mote for spec in fleet.tenants)
    for shard in range(rounds):
        for spec in fleet.tenants:
            if shard >= spec.shards_per_mote:
                continue
            if spec.drift_at_shard is not None and shard >= spec.drift_at_shard:
                pool = drift_pools[spec.tenant]
            else:
                pool = pools[spec.tenant]
            for mote in range(spec.n_motes):
                samples = _mote_shard(fleet, spec, pool, mote, shard)
                injector = injectors[(spec.tenant, mote)]
                if injector is not None:
                    delivered = {}
                    for name in sorted(samples):
                        kept, _ = faulty_samples(
                            injector, samples[name], cycles_per_tick
                        )
                        if kept.size:
                            delivered[name] = kept
                    samples = delivered
                if not samples:
                    continue  # the uplink ate the whole shard
                uploads.append(
                    ShardUpload(
                        tenant=spec.tenant, mote_id=mote, seq=shard, samples=samples
                    )
                )
    return uploads


async def run_fleet(
    fleet: FleetSpec,
    config: Optional[ServiceConfig] = None,
    service: Optional[IngestionService] = None,
) -> FleetReport:
    """Drive one fleet through an ingestion service and report throughput.

    Uploads are generated *before* the clock starts, so ``shards_per_s``
    measures ingestion (submit + absorption + drain), not workload
    simulation.  Pass a ``service`` to reuse one mid-test (it must not be
    started); otherwise one is built from ``config``.
    """
    svc = service if service is not None else IngestionService(config)
    programs = {}
    for spec in fleet.tenants:
        programs[spec.tenant] = workload_by_name(spec.workload).program()
        svc.register_tenant(
            spec.deployment_id,
            spec.program_version,
            programs[spec.tenant],
            fleet.platform,
            options=spec.options(),
            # The simulated fleet knows its own ground truth, which is what
            # makes the CI-calibration audit possible; real deployments
            # register without it and still get drift/staleness/SLO checks.
            truth=tenant_truth(fleet, spec) if svc.config.health is not None else None,
        )
    uploads = build_uploads(fleet)
    accepted = deferred = 0
    started = time.perf_counter()
    await svc.start()
    try:
        for upload in uploads:
            receipt = await svc.submit(upload)
            if receipt.status == "accepted":
                accepted += 1
            else:
                deferred += 1
        await svc.drain()
        wall = time.perf_counter() - started
        estimates = {str(t): svc.query(t) for t in svc.tenants}
        stats = svc.stats_payload()
    finally:
        await svc.stop()
    return FleetReport(
        shards_sent=len(uploads),
        shards_accepted=accepted,
        shards_deferred=deferred,
        samples_sent=sum(u.n_samples for u in uploads),
        wall_s=wall,
        shards_per_s=len(uploads) / wall if wall > 0 else 0.0,
        latency=svc.latency_percentiles(),
        stats=stats,
        estimates=estimates,
    )
