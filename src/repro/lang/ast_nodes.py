"""Abstract syntax tree for TinyScript.

Nodes carry their source position so semantic errors can point at code.
Expressions and statements are plain frozen dataclasses; the tree is built
by :mod:`repro.lang.parser` and consumed by the checker and the lowering
pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "Expr",
    "IntLit",
    "VarRef",
    "IndexRef",
    "Unary",
    "Binary",
    "SenseExpr",
    "CallExpr",
    "Stmt",
    "VarDecl",
    "Assign",
    "IndexAssign",
    "If",
    "While",
    "ReturnStmt",
    "SendStmt",
    "LedStmt",
    "ExprStmt",
    "Block",
    "ProcDecl",
    "GlobalDecl",
    "ArrayDecl",
    "Module",
]


@dataclass(frozen=True)
class Pos:
    """1-based source coordinates."""

    line: int
    column: int


@dataclass(frozen=True)
class IntLit:
    """Integer literal."""

    value: int
    pos: Pos


@dataclass(frozen=True)
class VarRef:
    """Read of a scalar variable (local, parameter, or global)."""

    name: str
    pos: Pos


@dataclass(frozen=True)
class IndexRef:
    """Read of ``array[index]``."""

    array: str
    index: "Expr"
    pos: Pos


@dataclass(frozen=True)
class Unary:
    """Unary ``-`` or ``!``."""

    op: str
    operand: "Expr"
    pos: Pos


@dataclass(frozen=True)
class Binary:
    """Binary operator.  Logical ``&&``/``||`` evaluate eagerly (see lower)."""

    op: str
    left: "Expr"
    right: "Expr"
    pos: Pos


@dataclass(frozen=True)
class SenseExpr:
    """``sense(channel)`` — one nondeterministic sensor reading."""

    channel: str
    pos: Pos


@dataclass(frozen=True)
class CallExpr:
    """Procedure call used as an expression (callee must return a value)."""

    callee: str
    args: tuple["Expr", ...]
    pos: Pos


Expr = Union[IntLit, VarRef, IndexRef, Unary, Binary, SenseExpr, CallExpr]


@dataclass(frozen=True)
class VarDecl:
    """``var name = expr;`` — introduces a procedure-local scalar."""

    name: str
    init: Expr
    pos: Pos


@dataclass(frozen=True)
class Assign:
    """``name = expr;``"""

    name: str
    value: Expr
    pos: Pos


@dataclass(frozen=True)
class IndexAssign:
    """``array[index] = expr;``"""

    array: str
    index: Expr
    value: Expr
    pos: Pos


@dataclass(frozen=True)
class Block:
    """``{ stmt* }``"""

    statements: tuple["Stmt", ...]
    pos: Pos


@dataclass(frozen=True)
class If:
    """``if (cond) block [else block-or-if]``"""

    cond: Expr
    then_body: Block
    else_body: Optional[Block]
    pos: Pos


@dataclass(frozen=True)
class While:
    """``while (cond) block``"""

    cond: Expr
    body: Block
    pos: Pos


@dataclass(frozen=True)
class ReturnStmt:
    """``return [expr];``"""

    value: Optional[Expr]
    pos: Pos


@dataclass(frozen=True)
class SendStmt:
    """``send(expr);`` — radio transmit."""

    value: Expr
    pos: Pos


@dataclass(frozen=True)
class LedStmt:
    """``led(expr);`` — LED port write."""

    value: Expr
    pos: Pos


@dataclass(frozen=True)
class ExprStmt:
    """Expression evaluated for effect (in practice: a void call)."""

    expr: Expr
    pos: Pos


Stmt = Union[
    VarDecl, Assign, IndexAssign, If, While, ReturnStmt, SendStmt, LedStmt, ExprStmt
]


@dataclass(frozen=True)
class ProcDecl:
    """``proc name(params) { ... }``"""

    name: str
    params: tuple[str, ...]
    body: Block
    pos: Pos


@dataclass(frozen=True)
class GlobalDecl:
    """``global name [= int];``"""

    name: str
    init: int
    pos: Pos


@dataclass(frozen=True)
class ArrayDecl:
    """``array name[size];`` — zero-initialized global array."""

    name: str
    size: int
    pos: Pos


@dataclass(frozen=True)
class Module:
    """A parsed TinyScript compilation unit."""

    globals_: tuple[GlobalDecl, ...]
    arrays: tuple[ArrayDecl, ...]
    procedures: tuple[ProcDecl, ...]
