"""Lowering from the TinyScript AST to the block/CFG IR.

Each procedure becomes one CFG built through :class:`repro.ir.CFGBuilder`.
The lowering choices that matter to the experiments:

* **Logical operators evaluate eagerly.**  ``a && b`` lowers to
  ``(a != 0) & (b != 0)`` rather than to short-circuit branches, so the only
  conditional branches in the CFG are the ones the programmer wrote
  (``if``/``while``).  This keeps the Markov parameter per branch aligned
  with a source-level decision, which is the granularity the paper's
  estimator targets.
* **Condition code lives in the branch block.**  The instructions computing
  an ``if``/``while`` condition are appended to the block that ends in the
  conditional branch, so block costs reflect where work actually happens.
* **Loop shape.**  ``while`` lowers to a header block holding the condition,
  a body that jumps back to the header, and a join continuation — the
  header's then-arm probability is the loop-continuation probability, whose
  geometric trip-count behaviour the estimators must recover.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SemanticError
from repro.ir.builder import CFGBuilder
from repro.ir.instructions import (
    BinaryOp,
    UnaryOp,
    binop,
    call,
    const,
    led,
    load,
    mov,
    send,
    sense,
    store,
    unop,
)
from repro.ir.procedure import Procedure
from repro.ir.program import Program
from repro.lang import ast_nodes as ast
from repro.lang.semantics import proc_returns_value

__all__ = ["lower_program", "lower_procedure"]

_BINOPS: dict[str, BinaryOp] = {
    "+": BinaryOp.ADD,
    "-": BinaryOp.SUB,
    "*": BinaryOp.MUL,
    "/": BinaryOp.DIV,
    "%": BinaryOp.MOD,
    "&": BinaryOp.AND,
    "|": BinaryOp.OR,
    "^": BinaryOp.XOR,
    "<<": BinaryOp.SHL,
    ">>": BinaryOp.SHR,
    "<": BinaryOp.LT,
    "<=": BinaryOp.LE,
    ">": BinaryOp.GT,
    ">=": BinaryOp.GE,
    "==": BinaryOp.EQ,
    "!=": BinaryOp.NE,
}


class _ProcLowerer:
    """Lower a single procedure's AST into a CFG."""

    def __init__(self, proc: ast.ProcDecl) -> None:
        self.proc = proc
        self.builder = CFGBuilder(proc.name)
        self._temp_counter = 0

    def fresh_temp(self) -> str:
        """A temp register; ``%`` cannot appear in source identifiers."""
        name = f"%t{self._temp_counter}"
        self._temp_counter += 1
        return name

    # -- expressions ----------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> str:
        """Emit code for ``expr`` into the current block; return its register."""
        b = self.builder
        if isinstance(expr, ast.IntLit):
            dst = self.fresh_temp()
            b.emit(const(dst, expr.value))
            return dst
        if isinstance(expr, ast.VarRef):
            return expr.name
        if isinstance(expr, ast.IndexRef):
            idx = self.lower_expr(expr.index)
            dst = self.fresh_temp()
            b.emit(load(dst, expr.array, idx))
            return dst
        if isinstance(expr, ast.Unary):
            src = self.lower_expr(expr.operand)
            dst = self.fresh_temp()
            if expr.op == "-":
                b.emit(unop(UnaryOp.NEG, dst, src))
            elif expr.op == "!":
                zero = self.fresh_temp()
                b.emit(const(zero, 0), binop(BinaryOp.EQ, dst, src, zero))
            else:  # pragma: no cover - parser only produces - and !
                raise SemanticError(f"unknown unary operator {expr.op!r}")
            return dst
        if isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                return self._lower_logical(expr)
            lhs = self.lower_expr(expr.left)
            rhs = self.lower_expr(expr.right)
            dst = self.fresh_temp()
            b.emit(binop(_BINOPS[expr.op], dst, lhs, rhs))
            return dst
        if isinstance(expr, ast.SenseExpr):
            dst = self.fresh_temp()
            b.emit(sense(dst, expr.channel))
            return dst
        if isinstance(expr, ast.CallExpr):
            args = [self.lower_expr(a) for a in expr.args]
            dst = self.fresh_temp()
            b.emit(call(expr.callee, dst, args))
            return dst
        raise SemanticError(f"cannot lower expression {type(expr).__name__}")

    def _lower_logical(self, expr: ast.Binary) -> str:
        """Eager ``&&``/``||``: normalize both sides to 0/1, combine bitwise."""
        b = self.builder
        lhs = self._normalize_bool(self.lower_expr(expr.left))
        rhs = self._normalize_bool(self.lower_expr(expr.right))
        dst = self.fresh_temp()
        op = BinaryOp.AND if expr.op == "&&" else BinaryOp.OR
        b.emit(binop(op, dst, lhs, rhs))
        return dst

    def _normalize_bool(self, src: str) -> str:
        """``src != 0`` as a 0/1 value."""
        zero = self.fresh_temp()
        dst = self.fresh_temp()
        self.builder.emit(const(zero, 0), binop(BinaryOp.NE, dst, src, zero))
        return dst

    # -- statements -------------------------------------------------------------

    def lower_block(self, block: ast.Block) -> bool:
        """Lower statements; returns True when the block ended in a return."""
        for stmt in block.statements:
            if self.lower_stmt(stmt):
                return True
        return False

    def lower_stmt(self, stmt: ast.Stmt) -> bool:
        """Lower one statement; returns True when it terminated control flow."""
        b = self.builder
        if isinstance(stmt, (ast.VarDecl, ast.Assign)):
            value = self.lower_expr(stmt.init if isinstance(stmt, ast.VarDecl) else stmt.value)
            b.emit(mov(stmt.name, value))
            return False
        if isinstance(stmt, ast.IndexAssign):
            idx = self.lower_expr(stmt.index)
            value = self.lower_expr(stmt.value)
            b.emit(store(stmt.array, idx, value))
            return False
        if isinstance(stmt, ast.SendStmt):
            b.emit(send(self.lower_expr(stmt.value)))
            return False
        if isinstance(stmt, ast.LedStmt):
            b.emit(led(self.lower_expr(stmt.value)))
            return False
        if isinstance(stmt, ast.ExprStmt):
            assert isinstance(stmt.expr, ast.CallExpr)  # enforced by semantics
            args = [self.lower_expr(a) for a in stmt.expr.args]
            b.emit(call(stmt.expr.callee, None, args))
            return False
        if isinstance(stmt, ast.ReturnStmt):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            b.ret(value)
            return True
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt)
        if isinstance(stmt, ast.While):
            self._lower_while(stmt)
            return False
        raise SemanticError(f"cannot lower statement {type(stmt).__name__}")

    def _lower_if(self, stmt: ast.If) -> bool:
        b = self.builder
        cond = self.lower_expr(stmt.cond)
        then_blk, else_blk = b.branch(cond)
        join_label = b.fresh_label("join")

        b.switch_to(then_blk)
        then_returned = self.lower_block(stmt.then_body)
        if not then_returned:
            b.jump(join_label)

        b.switch_to(else_blk)
        else_returned = self.lower_block(stmt.else_body) if stmt.else_body else False
        if not else_returned:
            b.jump(join_label)

        if then_returned and else_returned:
            return True
        b.block(join_label)
        return False

    def _lower_while(self, stmt: ast.While) -> None:
        b = self.builder
        header_label = b.fresh_label("loop")
        b.jump(header_label)
        b.block(header_label)
        cond = self.lower_expr(stmt.cond)
        body_blk, exit_blk = b.branch(cond)

        b.switch_to(body_blk)
        if not self.lower_block(stmt.body):
            b.jump(header_label)

        b.switch_to(exit_blk)

    # -- top level ----------------------------------------------------------------

    def lower(self) -> Procedure:
        returns_value = proc_returns_value(self.proc)
        body_returned = self.lower_block(self.proc.body)
        if not body_returned:
            if returns_value:
                zero = self.fresh_temp()
                self.builder.emit(const(zero, 0))
                self.builder.ret(zero)
            else:
                self.builder.ret()
        return self.builder.build(params=self.proc.params, returns_value=returns_value)


def lower_procedure(proc: ast.ProcDecl) -> Procedure:
    """Lower one procedure declaration."""
    return _ProcLowerer(proc).lower()


def lower_program(module: ast.Module, name: str, entry: str = "main") -> Program:
    """Lower a checked module into an IR :class:`Program`."""
    program = Program(name=name, entry=entry)
    for g in module.globals_:
        program.globals_[g.name] = g.init
    for a in module.arrays:
        program.arrays[a.name] = a.size
    for proc in module.procedures:
        program.add(lower_procedure(proc))
    return program
