"""TinyScript: a small imperative language for mote programs.

The reproduction needs realistic sensor-network programs whose control flow
depends on nondeterministic sensor data.  Rather than hand-wiring CFGs, the
workloads are written in TinyScript — a C-like language with procedures,
globals, fixed-size arrays, ``if``/``while``, and the mote builtins
``sense(channel)``, ``send(expr)``, ``led(expr)`` — and compiled to the
:mod:`repro.ir` CFG form by this package.

The public entry point is :func:`compile_source`.
"""

from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.lower import lower_program
from repro.lang.semantics import check_program

from repro.ir.program import Program

__all__ = ["compile_source", "tokenize", "parse", "check_program", "lower_program"]


def compile_source(source: str, name: str = "program", entry: str = "main") -> Program:
    """Compile TinyScript ``source`` into a validated IR :class:`Program`.

    Runs the full pipeline — lex, parse, semantic checks, lowering, CFG
    validation — and raises a :class:`repro.errors.LangError` subclass with a
    line/column position on the first problem found.
    """
    from repro.ir.validate import validate_program

    module = parse(tokenize(source))
    check_program(module, entry=entry)
    program = lower_program(module, name=name, entry=entry)
    program.source = source
    validate_program(program)
    return program
