"""Token kinds and the token record for the TinyScript lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

__all__ = ["TokenKind", "Token", "KEYWORDS"]


class TokenKind(enum.Enum):
    """Lexical categories."""

    IDENT = "ident"
    INT = "int"
    KEYWORD = "keyword"
    PUNCT = "punct"
    OP = "op"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "proc",
        "var",
        "global",
        "array",
        "if",
        "else",
        "while",
        "for",
        "return",
        "sense",
        "send",
        "led",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (1-based line/column)."""

    kind: TokenKind
    text: str
    line: int
    column: int
    value: Union[int, None] = None

    def is_(self, kind: TokenKind, text: str | None = None) -> bool:
        """Match on kind and, if given, exact text."""
        return self.kind is kind and (text is None or self.text == text)

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.text!r}@{self.line}:{self.column}"
