"""Hand-written lexer for TinyScript.

Produces a flat token list ending in an EOF token.  Comments run from ``#``
or ``//`` to end of line.  Operators are maximal-munch over the two-character
set first (``==``, ``!=``, ``<=``, ``>=``, ``&&``, ``||``, ``<<``, ``>>``)
then single characters.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.lang.tokens import KEYWORDS, Token, TokenKind

__all__ = ["tokenize"]

_TWO_CHAR_OPS = ("==", "!=", "<=", ">=", "&&", "||", "<<", ">>")
_ONE_CHAR_OPS = "+-*/%<>!&|^="
_PUNCT = "(){}[],;"
_DIGITS = "0123456789"


def _is_digit(ch: str) -> bool:
    # ASCII only: str.isdigit() accepts characters like '²' that int() rejects.
    return ch in _DIGITS


def _is_ident_start(ch: str) -> bool:
    return ch == "_" or (ch.isascii() and ch.isalpha())


def _is_ident_continue(ch: str) -> bool:
    return _is_ident_start(ch) or _is_digit(ch)


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into tokens; raises :class:`LexError` on bad input."""
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def advance(k: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance()
            continue
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance()
            continue
        start_line, start_col = line, col
        if _is_digit(ch):
            j = i
            while j < n and _is_digit(source[j]):
                j += 1
            if j < n and _is_ident_start(source[j]):
                raise LexError(f"malformed number starting {source[i:j + 1]!r}", line, col)
            text = source[i:j]
            tokens.append(Token(TokenKind.INT, text, start_line, start_col, value=int(text)))
            advance(j - i)
            continue
        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_continue(source[j]):
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            advance(j - i)
            continue
        two = source[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(TokenKind.OP, two, start_line, start_col))
            advance(2)
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(TokenKind.OP, ch, start_line, start_col))
            advance()
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenKind.PUNCT, ch, start_line, start_col))
            advance()
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
