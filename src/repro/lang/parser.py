"""Recursive-descent parser for TinyScript.

Grammar (EBNF, ``{}`` = repetition, ``[]`` = optional)::

    module     := { global | array | proc }
    global     := "global" IDENT [ "=" ["-"] INT ] ";"
    array      := "array" IDENT "[" INT "]" ";"
    proc       := "proc" IDENT "(" [ IDENT { "," IDENT } ] ")" block
    block      := "{" { stmt } "}"
    stmt       := "var" IDENT "=" expr ";"
                | IDENT "=" expr ";"
                | IDENT "[" expr "]" "=" expr ";"
                | "if" "(" expr ")" block [ "else" ( block | if-stmt ) ]
                | "while" "(" expr ")" block
                | "for" "(" [init] ";" [expr] ";" [step] ")" block
                  -- sugar: init; while (expr or 1) { body; step; }
                  -- init := "var" IDENT "=" expr | assignment (no ";")
                  -- step := assignment (no ";")
                | "return" [ expr ] ";"
                | "send" "(" expr ")" ";"
                | "led" "(" expr ")" ";"
                | IDENT "(" [ args ] ")" ";"
    expr       := or
    or         := and { "||" and }
    and        := cmp { "&&" cmp }
    cmp        := bitor [ ("=="|"!="|"<"|"<="|">"|">=") bitor ]
    bitor      := bitxor { "|" bitxor }
    bitxor     := bitand { "^" bitand }
    bitand     := shift { "&" shift }
    shift      := add { ("<<"|">>") add }
    add        := mul { ("+"|"-") mul }
    mul        := unary { ("*"|"/"|"%") unary }
    unary      := ("-"|"!") unary | primary
    primary    := INT | IDENT | IDENT "[" expr "]" | IDENT "(" args ")"
                | "sense" "(" IDENT ")" | "(" expr ")"
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.ast_nodes import Pos
from repro.lang.tokens import Token, TokenKind

__all__ = ["parse", "parse_expression"]

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.i = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.i]

    def _pos(self) -> Pos:
        return Pos(self.current.line, self.current.column)

    def error(self, message: str) -> ParseError:
        tok = self.current
        found = tok.text or "<eof>"
        return ParseError(f"{message}, found {found!r}", tok.line, tok.column)

    def advance(self) -> Token:
        tok = self.current
        if tok.kind is not TokenKind.EOF:
            self.i += 1
        return tok

    def match(self, kind: TokenKind, text: Optional[str] = None) -> Optional[Token]:
        if self.current.is_(kind, text):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        tok = self.match(kind, text)
        if tok is None:
            want = text if text is not None else kind.value
            raise self.error(f"expected {want!r}")
        return tok

    # -- declarations ---------------------------------------------------------

    def module(self) -> ast.Module:
        globals_: list[ast.GlobalDecl] = []
        arrays: list[ast.ArrayDecl] = []
        procs: list[ast.ProcDecl] = []
        while not self.current.is_(TokenKind.EOF):
            if self.current.is_(TokenKind.KEYWORD, "global"):
                globals_.append(self.global_decl())
            elif self.current.is_(TokenKind.KEYWORD, "array"):
                arrays.append(self.array_decl())
            elif self.current.is_(TokenKind.KEYWORD, "proc"):
                procs.append(self.proc_decl())
            else:
                raise self.error("expected 'global', 'array' or 'proc'")
        return ast.Module(tuple(globals_), tuple(arrays), tuple(procs))

    def global_decl(self) -> ast.GlobalDecl:
        pos = self._pos()
        self.expect(TokenKind.KEYWORD, "global")
        name = self.expect(TokenKind.IDENT).text
        init = 0
        if self.match(TokenKind.OP, "="):
            sign = -1 if self.match(TokenKind.OP, "-") else 1
            init = sign * int(self.expect(TokenKind.INT).value or 0)
        self.expect(TokenKind.PUNCT, ";")
        return ast.GlobalDecl(name, init, pos)

    def array_decl(self) -> ast.ArrayDecl:
        pos = self._pos()
        self.expect(TokenKind.KEYWORD, "array")
        name = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.PUNCT, "[")
        size_tok = self.expect(TokenKind.INT)
        self.expect(TokenKind.PUNCT, "]")
        self.expect(TokenKind.PUNCT, ";")
        size = int(size_tok.value or 0)
        if size <= 0:
            raise ParseError("array size must be positive", size_tok.line, size_tok.column)
        return ast.ArrayDecl(name, size, pos)

    def proc_decl(self) -> ast.ProcDecl:
        pos = self._pos()
        self.expect(TokenKind.KEYWORD, "proc")
        name = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.PUNCT, "(")
        params: list[str] = []
        if not self.current.is_(TokenKind.PUNCT, ")"):
            params.append(self.expect(TokenKind.IDENT).text)
            while self.match(TokenKind.PUNCT, ","):
                params.append(self.expect(TokenKind.IDENT).text)
        self.expect(TokenKind.PUNCT, ")")
        body = self.block()
        return ast.ProcDecl(name, tuple(params), body, pos)

    # -- statements -------------------------------------------------------------

    def block(self) -> ast.Block:
        pos = self._pos()
        self.expect(TokenKind.PUNCT, "{")
        stmts: list[ast.Stmt] = []
        while not self.current.is_(TokenKind.PUNCT, "}"):
            if self.current.is_(TokenKind.EOF):
                raise self.error("unterminated block; expected '}'")
            parsed = self.statement()
            if isinstance(parsed, list):  # 'for' desugars to several stmts
                stmts.extend(parsed)
            else:
                stmts.append(parsed)
        self.expect(TokenKind.PUNCT, "}")
        return ast.Block(tuple(stmts), pos)

    def statement(self) -> ast.Stmt:
        tok = self.current
        pos = self._pos()
        if tok.is_(TokenKind.KEYWORD, "var"):
            self.advance()
            name = self.expect(TokenKind.IDENT).text
            self.expect(TokenKind.OP, "=")
            init = self.expression()
            self.expect(TokenKind.PUNCT, ";")
            return ast.VarDecl(name, init, pos)
        if tok.is_(TokenKind.KEYWORD, "if"):
            return self.if_statement()
        if tok.is_(TokenKind.KEYWORD, "while"):
            self.advance()
            self.expect(TokenKind.PUNCT, "(")
            cond = self.expression()
            self.expect(TokenKind.PUNCT, ")")
            body = self.block()
            return ast.While(cond, body, pos)
        if tok.is_(TokenKind.KEYWORD, "for"):
            return self.for_statement()
        if tok.is_(TokenKind.KEYWORD, "return"):
            self.advance()
            value = None
            if not self.current.is_(TokenKind.PUNCT, ";"):
                value = self.expression()
            self.expect(TokenKind.PUNCT, ";")
            return ast.ReturnStmt(value, pos)
        if tok.is_(TokenKind.KEYWORD, "send"):
            self.advance()
            self.expect(TokenKind.PUNCT, "(")
            value = self.expression()
            self.expect(TokenKind.PUNCT, ")")
            self.expect(TokenKind.PUNCT, ";")
            return ast.SendStmt(value, pos)
        if tok.is_(TokenKind.KEYWORD, "led"):
            self.advance()
            self.expect(TokenKind.PUNCT, "(")
            value = self.expression()
            self.expect(TokenKind.PUNCT, ")")
            self.expect(TokenKind.PUNCT, ";")
            return ast.LedStmt(value, pos)
        if tok.is_(TokenKind.IDENT):
            name = self.advance().text
            if self.match(TokenKind.OP, "="):
                value = self.expression()
                self.expect(TokenKind.PUNCT, ";")
                return ast.Assign(name, value, pos)
            if self.match(TokenKind.PUNCT, "["):
                index = self.expression()
                self.expect(TokenKind.PUNCT, "]")
                self.expect(TokenKind.OP, "=")
                value = self.expression()
                self.expect(TokenKind.PUNCT, ";")
                return ast.IndexAssign(name, index, value, pos)
            if self.match(TokenKind.PUNCT, "("):
                args = self.call_args()
                self.expect(TokenKind.PUNCT, ";")
                return ast.ExprStmt(ast.CallExpr(name, args, pos), pos)
            raise self.error("expected '=', '[' or '(' after identifier")
        raise self.error("expected a statement")

    def _simple_clause(self, allow_var: bool) -> ast.Stmt:
        """A ';'-free init/step clause of a 'for' header."""
        pos = self._pos()
        if allow_var and self.match(TokenKind.KEYWORD, "var"):
            name = self.expect(TokenKind.IDENT).text
            self.expect(TokenKind.OP, "=")
            return ast.VarDecl(name, self.expression(), pos)
        name = self.expect(TokenKind.IDENT).text
        if self.match(TokenKind.PUNCT, "["):
            index = self.expression()
            self.expect(TokenKind.PUNCT, "]")
            self.expect(TokenKind.OP, "=")
            return ast.IndexAssign(name, index, self.expression(), pos)
        self.expect(TokenKind.OP, "=")
        return ast.Assign(name, self.expression(), pos)

    def for_statement(self) -> list[ast.Stmt]:
        """Desugar ``for (init; cond; step) body`` to init + while.

        Note the TinyScript scoping rule: a ``var`` declared in the init
        clause belongs to the *enclosing* scope (there is no block scoping).
        """
        pos = self._pos()
        self.expect(TokenKind.KEYWORD, "for")
        self.expect(TokenKind.PUNCT, "(")
        init: Optional[ast.Stmt] = None
        if not self.current.is_(TokenKind.PUNCT, ";"):
            init = self._simple_clause(allow_var=True)
        self.expect(TokenKind.PUNCT, ";")
        cond: ast.Expr = ast.IntLit(1, pos)
        if not self.current.is_(TokenKind.PUNCT, ";"):
            cond = self.expression()
        self.expect(TokenKind.PUNCT, ";")
        step: Optional[ast.Stmt] = None
        if not self.current.is_(TokenKind.PUNCT, ")"):
            step = self._simple_clause(allow_var=False)
        self.expect(TokenKind.PUNCT, ")")
        body = self.block()
        loop_body = body.statements + ((step,) if step is not None else ())
        loop = ast.While(cond, ast.Block(loop_body, body.pos), pos)
        return ([init] if init is not None else []) + [loop]

    def if_statement(self) -> ast.If:
        pos = self._pos()
        self.expect(TokenKind.KEYWORD, "if")
        self.expect(TokenKind.PUNCT, "(")
        cond = self.expression()
        self.expect(TokenKind.PUNCT, ")")
        then_body = self.block()
        else_body: Optional[ast.Block] = None
        if self.match(TokenKind.KEYWORD, "else"):
            if self.current.is_(TokenKind.KEYWORD, "if"):
                nested = self.if_statement()
                else_body = ast.Block((nested,), nested.pos)
            else:
                else_body = self.block()
        return ast.If(cond, then_body, else_body, pos)

    # -- expressions ------------------------------------------------------------

    def call_args(self) -> tuple[ast.Expr, ...]:
        """Arguments after '('; consumes the closing ')'."""
        args: list[ast.Expr] = []
        if not self.current.is_(TokenKind.PUNCT, ")"):
            args.append(self.expression())
            while self.match(TokenKind.PUNCT, ","):
                args.append(self.expression())
        self.expect(TokenKind.PUNCT, ")")
        return tuple(args)

    def expression(self) -> ast.Expr:
        return self._or()

    def _binary_level(self, ops: tuple[str, ...], next_level) -> ast.Expr:
        left = next_level()
        while self.current.kind is TokenKind.OP and self.current.text in ops:
            pos = self._pos()
            op = self.advance().text
            right = next_level()
            left = ast.Binary(op, left, right, pos)
        return left

    def _or(self) -> ast.Expr:
        return self._binary_level(("||",), self._and)

    def _and(self) -> ast.Expr:
        return self._binary_level(("&&",), self._cmp)

    def _cmp(self) -> ast.Expr:
        left = self._bitor()
        if self.current.kind is TokenKind.OP and self.current.text in _CMP_OPS:
            pos = self._pos()
            op = self.advance().text
            right = self._bitor()
            return ast.Binary(op, left, right, pos)
        return left

    def _bitor(self) -> ast.Expr:
        return self._binary_level(("|",), self._bitxor)

    def _bitxor(self) -> ast.Expr:
        return self._binary_level(("^",), self._bitand)

    def _bitand(self) -> ast.Expr:
        return self._binary_level(("&",), self._shift)

    def _shift(self) -> ast.Expr:
        return self._binary_level(("<<", ">>"), self._add)

    def _add(self) -> ast.Expr:
        return self._binary_level(("+", "-"), self._mul)

    def _mul(self) -> ast.Expr:
        return self._binary_level(("*", "/", "%"), self._unary)

    def _unary(self) -> ast.Expr:
        if self.current.kind is TokenKind.OP and self.current.text in ("-", "!"):
            pos = self._pos()
            op = self.advance().text
            return ast.Unary(op, self._unary(), pos)
        return self._primary()

    def _primary(self) -> ast.Expr:
        tok = self.current
        pos = self._pos()
        if tok.kind is TokenKind.INT:
            self.advance()
            return ast.IntLit(int(tok.value or 0), pos)
        if tok.is_(TokenKind.KEYWORD, "sense"):
            self.advance()
            self.expect(TokenKind.PUNCT, "(")
            channel = self.expect(TokenKind.IDENT).text
            self.expect(TokenKind.PUNCT, ")")
            return ast.SenseExpr(channel, pos)
        if tok.kind is TokenKind.IDENT:
            name = self.advance().text
            if self.match(TokenKind.PUNCT, "["):
                index = self.expression()
                self.expect(TokenKind.PUNCT, "]")
                return ast.IndexRef(name, index, pos)
            if self.match(TokenKind.PUNCT, "("):
                return ast.CallExpr(name, self.call_args(), pos)
            return ast.VarRef(name, pos)
        if self.match(TokenKind.PUNCT, "("):
            inner = self.expression()
            self.expect(TokenKind.PUNCT, ")")
            return inner
        raise self.error("expected an expression")


def parse(tokens: list[Token]) -> ast.Module:
    """Parse a token stream into a :class:`~repro.lang.ast_nodes.Module`."""
    parser = _Parser(tokens)
    module = parser.module()
    return module


def parse_expression(tokens: list[Token]) -> ast.Expr:
    """Parse a standalone expression (exposed for tests and tooling)."""
    parser = _Parser(tokens)
    expr = parser.expression()
    if not parser.current.is_(TokenKind.EOF):
        raise parser.error("trailing input after expression")
    return expr
