"""Semantic checks for TinyScript modules.

Runs after parsing and before lowering.  The checks are exactly the ones the
rest of the pipeline relies on:

* unique global / array / procedure names; locals may not shadow globals
  (so a bare name is unambiguous at runtime);
* every read names a declared scalar, every indexed access a declared array;
* calls name declared procedures with matching arity; a call in expression
  position requires a value-returning callee;
* a procedure either always or never returns a value (mixing is an error);
* no statements after a ``return`` inside a block (would be unreachable and
  would distort the block census the evaluation reports);
* the entry procedure exists and takes no parameters.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SemanticError
from repro.lang import ast_nodes as ast

__all__ = ["check_program", "proc_returns_value"]


def _err(message: str, pos: ast.Pos) -> SemanticError:
    return SemanticError(f"{pos.line}:{pos.column}: {message}")


def proc_returns_value(proc: ast.ProcDecl) -> bool:
    """True when any ``return expr;`` appears in the procedure body."""
    found = False

    def visit_block(block: ast.Block) -> None:
        nonlocal found
        for stmt in block.statements:
            if isinstance(stmt, ast.ReturnStmt) and stmt.value is not None:
                found = True
            elif isinstance(stmt, ast.If):
                visit_block(stmt.then_body)
                if stmt.else_body:
                    visit_block(stmt.else_body)
            elif isinstance(stmt, ast.While):
                visit_block(stmt.body)

    visit_block(proc.body)
    return found


class _ProcChecker:
    """Checks one procedure body against module-level declarations."""

    def __init__(
        self,
        module: ast.Module,
        proc: ast.ProcDecl,
        returns_value: dict[str, bool],
        arity: dict[str, int],
    ) -> None:
        self.module = module
        self.proc = proc
        self.returns_value = returns_value
        self.arity = arity
        self.globals = {g.name for g in module.globals_}
        self.arrays = {a.name for a in module.arrays}
        self.scope: set[str] = set(proc.params)
        self.has_value_return: Optional[bool] = None

    def run(self) -> None:
        for param in self.proc.params:
            if param in self.globals or param in self.arrays:
                raise _err(
                    f"parameter {param!r} shadows a global declaration", self.proc.pos
                )
        self.check_block(self.proc.body)

    # -- statements -----------------------------------------------------------

    def check_block(self, block: ast.Block) -> None:
        terminated_at: Optional[ast.Pos] = None
        for stmt in block.statements:
            if terminated_at is not None:
                raise _err("unreachable statement after 'return'", stmt.pos)
            self.check_stmt(stmt)
            if isinstance(stmt, ast.ReturnStmt):
                terminated_at = stmt.pos

    def check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            self.check_expr(stmt.init)
            if stmt.name in self.scope:
                raise _err(f"redeclaration of {stmt.name!r}", stmt.pos)
            if stmt.name in self.globals or stmt.name in self.arrays:
                raise _err(f"local {stmt.name!r} shadows a global declaration", stmt.pos)
            self.scope.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            self.check_expr(stmt.value)
            if stmt.name not in self.scope and stmt.name not in self.globals:
                raise _err(f"assignment to undeclared variable {stmt.name!r}", stmt.pos)
        elif isinstance(stmt, ast.IndexAssign):
            if stmt.array not in self.arrays:
                raise _err(f"undeclared array {stmt.array!r}", stmt.pos)
            self.check_expr(stmt.index)
            self.check_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self.check_expr(stmt.cond)
            self.check_block(stmt.then_body)
            if stmt.else_body:
                self.check_block(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self.check_expr(stmt.cond)
            self.check_block(stmt.body)
        elif isinstance(stmt, ast.ReturnStmt):
            has_value = stmt.value is not None
            if stmt.value is not None:
                self.check_expr(stmt.value)
            if self.has_value_return is None:
                self.has_value_return = has_value
            elif self.has_value_return != has_value:
                raise _err(
                    f"procedure {self.proc.name!r} mixes value and void returns",
                    stmt.pos,
                )
        elif isinstance(stmt, (ast.SendStmt, ast.LedStmt)):
            self.check_expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            if not isinstance(stmt.expr, ast.CallExpr):
                raise _err("only calls may be used as statements", stmt.pos)
            self.check_call(stmt.expr, require_value=False)
        else:  # pragma: no cover - exhaustive over Stmt
            raise _err(f"unknown statement {type(stmt).__name__}", stmt.pos)

    # -- expressions -------------------------------------------------------------

    def check_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLit):
            return
        if isinstance(expr, ast.VarRef):
            if expr.name not in self.scope and expr.name not in self.globals:
                raise _err(f"use of undeclared variable {expr.name!r}", expr.pos)
            return
        if isinstance(expr, ast.IndexRef):
            if expr.array not in self.arrays:
                raise _err(f"undeclared array {expr.array!r}", expr.pos)
            self.check_expr(expr.index)
            return
        if isinstance(expr, ast.Unary):
            self.check_expr(expr.operand)
            return
        if isinstance(expr, ast.Binary):
            self.check_expr(expr.left)
            self.check_expr(expr.right)
            return
        if isinstance(expr, ast.SenseExpr):
            return
        if isinstance(expr, ast.CallExpr):
            self.check_call(expr, require_value=True)
            return
        raise _err(f"unknown expression {type(expr).__name__}", expr.pos)

    def check_call(self, call: ast.CallExpr, require_value: bool) -> None:
        if call.callee not in self.arity:
            raise _err(f"call to undeclared procedure {call.callee!r}", call.pos)
        expected = self.arity[call.callee]
        if len(call.args) != expected:
            raise _err(
                f"{call.callee!r} expects {expected} argument(s), got {len(call.args)}",
                call.pos,
            )
        if require_value and not self.returns_value[call.callee]:
            raise _err(
                f"{call.callee!r} returns no value but is used in an expression",
                call.pos,
            )
        for arg in call.args:
            self.check_expr(arg)


def check_program(module: ast.Module, entry: str = "main") -> None:
    """Validate a parsed module; raises :class:`SemanticError` on problems."""
    seen: set[str] = set()
    for decl in (*module.globals_, *module.arrays, *module.procedures):
        if decl.name in seen:
            raise _err(f"duplicate declaration of {decl.name!r}", decl.pos)
        seen.add(decl.name)

    proc_names = {p.name for p in module.procedures}
    if entry not in proc_names:
        raise SemanticError(f"entry procedure {entry!r} is not declared")
    entry_proc = next(p for p in module.procedures if p.name == entry)
    if entry_proc.params:
        raise _err(f"entry procedure {entry!r} must take no parameters", entry_proc.pos)

    returns_value = {p.name: proc_returns_value(p) for p in module.procedures}
    arity = {p.name: len(p.params) for p in module.procedures}
    for proc in module.procedures:
        _ProcChecker(module, proc, returns_value, arity).run()
