"""CLI for the experiment suite (installed as ``repro-experiments``).

Examples::

    repro-experiments --list
    repro-experiments t1 f1 f4
    repro-experiments --all --quick
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import ExperimentConfig
from repro.mote.platform import MICAZ_LIKE, TELOSB_LIKE

__all__ = ["main"]

_PLATFORMS = {"micaz": MICAZ_LIKE, "telosb": TELOSB_LIKE}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Run the Code Tomography reproduction's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (known: {', '.join(sorted(ALL_EXPERIMENTS))})",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument(
        "--quick", action="store_true", help="shrink sample counts ~10x for a fast pass"
    )
    parser.add_argument(
        "--platform",
        choices=sorted(_PLATFORMS),
        default="micaz",
        help="mote platform preset (default: micaz)",
    )
    parser.add_argument("--seed", type=int, default=2015, help="experiment RNG seed")
    parser.add_argument(
        "--activations", type=int, default=3000, help="profiling activations per run"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list:
        for exp_id in sorted(ALL_EXPERIMENTS):
            print(exp_id)
        return 0

    ids = sorted(ALL_EXPERIMENTS) if args.all else list(args.experiments)
    if not ids:
        print("nothing to run; pass experiment ids, --all, or --list", file=sys.stderr)
        return 2
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment id(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(ALL_EXPERIMENTS))})",
            file=sys.stderr,
        )
        return 2

    config = ExperimentConfig(
        platform=_PLATFORMS[args.platform],
        activations=args.activations,
        seed=args.seed,
        quick=args.quick,
    )
    for exp_id in ids:
        started = time.perf_counter()
        try:
            result = ALL_EXPERIMENTS[exp_id](config)
        except ExperimentError as exc:
            print(f"{exp_id}: failed: {exc}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{exp_id} finished in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
