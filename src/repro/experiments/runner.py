"""CLI for the experiment suite (installed as ``repro-experiments``).

Examples::

    repro-experiments --list
    repro-experiments t1 f1 f4
    repro-experiments --all --quick --jobs 4
    repro-experiments --all --no-cache --progress --json run.json

Runs go through :mod:`repro.experiments.engine`: ``--jobs N`` fans
independent experiments (or, for a single experiment, its batchable units)
over N worker processes with bit-identical output to ``--jobs 1``; results
are cached under ``--cache-dir`` (default ``.repro-cache/``) keyed by the
full configuration, so warm re-runs skip completed work — disable with
``--no-cache``.  A failing experiment no longer aborts the run: every
requested id executes and failures are reported together at exit.

Telemetry (:mod:`repro.obs`): ``--trace PATH`` exports the run's span
timeline (``--trace-format jsonl`` for JSON lines, ``chrome`` for a
``chrome://tracing``/Perfetto-loadable file) and ``--metrics PATH`` writes
the metrics-registry snapshot plus the run manifest.  Both are artifacts
*about* the run; rendered tables stay byte-identical with telemetry on or
off, at any ``--jobs`` value.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import ExperimentConfig
from repro.experiments.engine import (
    DEFAULT_CACHE_DIR,
    ExperimentOutcome,
    ProgressEvent,
    ResultCache,
    run_experiments,
)
from repro.mote.platform import MICAZ_LIKE, TELOSB_LIKE
from repro.obs import (
    HardwareCounters,
    MetricsRegistry,
    Tracer,
    build_manifest,
    counters_active,
    format_counters,
    metrics_active,
    tracing,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from repro.profiling.serialize import json_default

__all__ = ["main"]

_PLATFORMS = {"micaz": MICAZ_LIKE, "telosb": TELOSB_LIKE}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Run the Code Tomography reproduction's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (known: {', '.join(sorted(ALL_EXPERIMENTS))})",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument(
        "--quick", action="store_true", help="shrink sample counts ~10x for a fast pass"
    )
    parser.add_argument(
        "--platform",
        choices=sorted(_PLATFORMS),
        default="micaz",
        help="mote platform preset (default: micaz)",
    )
    parser.add_argument("--seed", type=int, default=2015, help="experiment RNG seed")
    parser.add_argument(
        "--activations", type=int, default=3000, help="profiling activations per run"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; output is bit-identical at any N (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always recompute; neither read nor write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-experiment scheduling/timing lines to stderr",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        dest="json_path",
        help="write a structured run report (results, timings, failures) to PATH",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        dest="trace_path",
        help="export the run's span timeline to PATH (see --trace-format)",
    )
    parser.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="trace export format: JSON lines or Chrome trace_event "
        "(chrome://tracing / Perfetto); default: jsonl",
    )
    parser.add_argument(
        "--metrics",
        type=Path,
        default=None,
        metavar="PATH",
        dest="metrics_path",
        help="write the metrics-registry snapshot (+ run manifest) to PATH",
    )
    parser.add_argument(
        "--counters",
        action="store_true",
        help="enable mote hardware-counter telemetry; prints the aggregated "
        "counter table after the experiments (and embeds the snapshot in "
        "--metrics output). Rendered experiment tables are unaffected.",
    )
    return parser


def _progress_printer(event: ProgressEvent) -> None:
    if event.kind == "start":
        print(f"[{event.experiment_id}] started", file=sys.stderr)
    elif event.kind == "cached":
        print(
            f"[{event.experiment_id}] cache hit ({event.completed}/{event.total})",
            file=sys.stderr,
        )
    elif event.kind == "failed":
        print(
            f"[{event.experiment_id}] FAILED after {event.seconds:.1f}s "
            f"({event.completed}/{event.total}): {event.error}",
            file=sys.stderr,
        )
    else:
        print(
            f"[{event.experiment_id}] done in {event.seconds:.1f}s "
            f"({event.completed}/{event.total})",
            file=sys.stderr,
        )


def _report_payload(
    outcomes: Sequence[ExperimentOutcome],
    args: argparse.Namespace,
    wall_seconds: float,
    registry: MetricsRegistry,
) -> dict:
    """The ``--json`` run report: config echo + per-experiment outcomes.

    Cache behaviour and per-experiment wall-clock come from the metrics
    registry (the engine records them there on every run), so the report
    and the ``--metrics`` artifact can never tell different stories.
    """
    snap = registry.snapshot()
    counters, gauges = snap["counters"], snap["gauges"]
    return {
        "config": {
            "platform": args.platform,
            "activations": args.activations,
            "seed": args.seed,
            "quick": args.quick,
            "jobs": args.jobs,
            "cache": not args.no_cache,
        },
        "wall_seconds": wall_seconds,
        "cache": {
            "hits": counters.get("cache.hit", 0),
            "misses": counters.get("cache.miss", 0),
            "stores": counters.get("cache.store", 0),
        },
        "wall_seconds_by_experiment": {
            key.removeprefix("engine.wall_seconds."): value
            for key, value in gauges.items()
            if key.startswith("engine.wall_seconds.")
        },
        "experiments": [
            {
                "id": o.experiment_id,
                "ok": o.ok,
                "cached": o.cached,
                "seconds": o.seconds,
                "error": o.error,
                "failed_unit": o.failed_unit,
                "traceback": o.traceback,
                "title": o.result.title if o.result else None,
                "tables": (
                    [
                        {
                            "title": t.title,
                            "columns": list(t.columns),
                            "rows": [list(r) for r in t.rows],
                        }
                        for t in o.result.tables
                    ]
                    if o.result
                    else []
                ),
                "series": o.result.series if o.result else {},
                "notes": o.result.notes if o.result else [],
                "timings": o.result.timings if o.result else {},
            }
            for o in outcomes
        ],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list:
        for exp_id in sorted(ALL_EXPERIMENTS):
            print(exp_id)
        return 0

    ids = sorted(ALL_EXPERIMENTS) if args.all else list(args.experiments)
    if not ids:
        print("nothing to run; pass experiment ids, --all, or --list", file=sys.stderr)
        return 2
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment id(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(ALL_EXPERIMENTS))})",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    for flag, path in (
        ("--json", args.json_path),
        ("--trace", args.trace_path),
        ("--metrics", args.metrics_path),
    ):
        if path is not None and not path.parent.is_dir():
            # Catch the typo'd path before hours of compute, not after.
            print(f"{flag}: directory does not exist: {path.parent}", file=sys.stderr)
            return 2

    config = ExperimentConfig(
        platform=_PLATFORMS[args.platform],
        activations=args.activations,
        seed=args.seed,
        quick=args.quick,
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    # The registry is always live (it feeds --json's cache/wall-clock block);
    # span capture — the part with per-unit buffers — only turns on when an
    # artifact was requested.
    registry = MetricsRegistry()
    tracer = Tracer() if args.trace_path is not None else None
    observe = args.trace_path is not None or args.metrics_path is not None
    hw = HardwareCounters() if args.counters else None
    started = time.perf_counter()
    with contextlib.ExitStack() as stack:
        stack.enter_context(metrics_active(registry))
        if tracer is not None:
            stack.enter_context(tracing(tracer))
        if hw is not None:
            stack.enter_context(counters_active(hw))
        outcomes = run_experiments(
            ids,
            config,
            jobs=args.jobs,
            cache=cache,
            progress=_progress_printer if args.progress else None,
            observe=observe,
            counters=args.counters,
        )
    wall = time.perf_counter() - started
    hw_snapshot = hw.snapshot() if hw is not None else None

    for outcome in outcomes:
        if not outcome.ok:
            continue
        print(outcome.result.render())
        suffix = ", cached" if outcome.cached else ""
        print(f"[{outcome.experiment_id} finished in {outcome.seconds:.1f}s{suffix}]")
        if args.progress and outcome.result.timings:
            for stage_name in sorted(outcome.result.timings):
                seconds = outcome.result.timings[stage_name]
                print(
                    f"  [{outcome.experiment_id}] {stage_name}: {seconds:.2f}s",
                    file=sys.stderr,
                )
        print()

    report_error = None
    if args.json_path is not None:
        try:
            args.json_path.write_text(
                json.dumps(
                    _report_payload(outcomes, args, wall, registry),
                    indent=2,
                    default=json_default,
                )
                + "\n"
            )
        except OSError as exc:
            report_error = f"--json: could not write {args.json_path}: {exc}"
            print(report_error, file=sys.stderr)

    if observe:
        manifest = build_manifest(config, ids, outcomes)
        if args.trace_path is not None:
            try:
                if args.trace_format == "chrome":
                    write_chrome_trace(args.trace_path, tracer.spans, manifest)
                else:
                    write_jsonl(args.trace_path, tracer.spans, manifest)
            except OSError as exc:
                report_error = f"--trace: could not write {args.trace_path}: {exc}"
                print(report_error, file=sys.stderr)
        if args.metrics_path is not None:
            try:
                write_metrics(
                    args.metrics_path,
                    registry,
                    manifest,
                    hardware_counters=hw_snapshot,
                )
            except OSError as exc:
                report_error = f"--metrics: could not write {args.metrics_path}: {exc}"
                print(report_error, file=sys.stderr)

    if hw_snapshot is not None:
        print(format_counters(hw_snapshot))
        print()

    failures = [o for o in outcomes if not o.ok]
    cached_n = sum(1 for o in outcomes if o.cached)
    print(
        f"{len(outcomes) - len(failures)}/{len(outcomes)} experiments ok "
        f"({cached_n} cached) in {wall:.1f}s"
    )
    if failures:
        for outcome in failures:
            where = (
                f" (unit {outcome.failed_unit})" if outcome.failed_unit is not None else ""
            )
            print(
                f"{outcome.experiment_id}: failed{where}: {outcome.error}",
                file=sys.stderr,
            )
            if outcome.traceback:
                print(outcome.traceback.rstrip(), file=sys.stderr)
        return 1
    return 1 if report_error else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
