"""Shared plumbing for the experiment modules.

Centralizes the one pipeline every experiment repeats — run a workload on a
platform, collect the degraded timing dataset, compute the empirical ground
truth, estimate — so experiment modules stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.core import CodeTomography, EstimationOptions
from repro.ir.program import Program
from repro.mote.platform import MICAZ_LIKE, Platform
from repro.placement.layout import ProgramLayout
from repro.profiling import TimingDataset, TimingProfiler
from repro.sim import RunResult, run_program
from repro.util.tables import Table
from repro.workloads.registry import WorkloadSpec

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ProfiledRun",
    "profiled_run",
    "tomography_thetas",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared across experiments.

    ``quick`` shrinks sample counts ~10x so tests can exercise every
    experiment end to end; benchmark and CLI runs use the full sizes.
    """

    platform: Platform = MICAZ_LIKE
    activations: int = 3000
    seed: int = 2015  # the venue year; any fixed value works
    quick: bool = False
    scenario: str = "default"

    @property
    def effective_activations(self) -> int:
        """Activation count after the quick-mode reduction."""
        return max(self.activations // 10, 100) if self.quick else self.activations


@dataclass
class ExperimentResult:
    """What an experiment hands back: identity, tables, raw series."""

    experiment_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    series: dict[str, list] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """All tables plus notes, terminal-ready."""
        parts = [f"== {self.experiment_id.upper()}: {self.title} =="]
        parts.extend(t.render() for t in self.tables)
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n\n".join(parts)


@dataclass
class ProfiledRun:
    """One workload executed once, with everything later stages need."""

    spec: WorkloadSpec
    program: Program
    result: RunResult
    dataset: TimingDataset
    truth: dict[str, np.ndarray]


def profiled_run(
    spec: WorkloadSpec,
    config: ExperimentConfig,
    layout: Optional[ProgramLayout] = None,
    seed_offset: int = 0,
) -> ProfiledRun:
    """Run one workload and collect its timing dataset + ground truth."""
    program = spec.program()
    sensors = spec.sensors(scenario=config.scenario, rng=config.seed + seed_offset)
    result = run_program(
        program,
        config.platform,
        sensors,
        activations=config.effective_activations,
        layout=layout,
    )
    profiler = TimingProfiler(config.platform, rng=config.seed + seed_offset + 1)
    dataset = profiler.collect(result.records)
    truth = {
        proc.name: result.counters.true_branch_probabilities(proc) for proc in program
    }
    return ProfiledRun(
        spec=spec, program=program, result=result, dataset=dataset, truth=truth
    )


def tomography_thetas(
    run: ProfiledRun,
    config: ExperimentConfig,
    method: str = "hybrid",
    options: Optional[EstimationOptions] = None,
) -> dict[str, np.ndarray]:
    """Estimate every procedure's branch probabilities from the run."""
    opts = options or EstimationOptions(method=method, seed=config.seed)
    if options is not None and options.method != method:
        opts = replace(options, method=method)
    tomo = CodeTomography(run.program, config.platform)
    return tomo.estimate(run.dataset, opts).thetas
