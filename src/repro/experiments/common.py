"""Shared plumbing for the experiment modules.

Centralizes the one pipeline every experiment repeats — run a workload on a
platform, collect the degraded timing dataset, compute the empirical ground
truth, estimate — so experiment modules stay declarative.

Batchable units
---------------

Every experiment decomposes into independent **units** (one workload, one
(predictor, workload) pair, one scenario, ...).  A unit is a module-level
function that takes its identifying arguments plus the
:class:`ExperimentConfig` and returns a :class:`UnitResult`; the experiment's
``run()`` maps the unit function over the unit list with :func:`map_units`
and reassembles tables/series with :func:`combine_units`.  Two properties
make this the substrate of the parallel engine:

* units derive *all* randomness from ``config`` and their own identity, so
  a unit's output is independent of when and where it executes;
* :func:`map_units` and :func:`combine_units` are order-preserving, so the
  assembled :class:`ExperimentResult` is bit-identical whether units ran
  serially or fanned out over a process pool.

The engine enables unit-level fan-out via :func:`unit_executor`; outside
that context :func:`map_units` is a plain serial ``map``.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import Executor
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Optional, Sequence, TypeVar

import numpy as np

from repro.core import CodeTomography, EstimationOptions
from repro.errors import UnitExecutionError
from repro.obs import MetricsRegistry, Tracer, current_registry, current_tracer
from repro.obs import metrics_active, tracing
from repro.obs import counters as hwc
from repro.ir.program import Program
from repro.mote.platform import MICAZ_LIKE, Platform
from repro.placement.layout import ProgramLayout
from repro.profiling import TimingDataset, TimingProfiler
from repro.sim import RunResult, run_program
from repro.util.tables import Table
from repro.workloads.registry import WorkloadSpec

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ProfiledRun",
    "UnitResult",
    "profiled_run",
    "tomography_thetas",
    "map_units",
    "combine_units",
    "unit_executor",
    "stage",
]

_T = TypeVar("_T")
_U = TypeVar("_U")


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared across experiments.

    ``quick`` shrinks sample counts ~10x so tests can exercise every
    experiment end to end; benchmark and CLI runs use the full sizes.
    """

    platform: Platform = MICAZ_LIKE
    activations: int = 3000
    seed: int = 2015  # the venue year; any fixed value works
    quick: bool = False
    scenario: str = "default"

    @property
    def effective_activations(self) -> int:
        """Activation count after the quick-mode reduction."""
        return max(self.activations // 10, 100) if self.quick else self.activations


@dataclass
class ExperimentResult:
    """What an experiment hands back: identity, tables, raw series.

    ``timings`` holds wall-clock stage diagnostics (e.g. estimator fit
    seconds).  They are deliberately *excluded* from :meth:`render`: the
    rendered report contains only seed-determined values, which is what
    lets the engine promise byte-identical output at any worker count and
    lets the result cache serve renders verbatim.  The CLI reports timings
    separately (``--progress`` / ``--json``).
    """

    experiment_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    series: dict[str, list] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """All tables plus notes, terminal-ready (deterministic for a seed)."""
        parts = [f"== {self.experiment_id.upper()}: {self.title} =="]
        parts.extend(t.render() for t in self.tables)
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n\n".join(parts)


@dataclass
class UnitResult:
    """One unit's contribution to an experiment: rows + series fragments."""

    rows: list[tuple] = field(default_factory=list)
    series: dict[str, list] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)

    def add_row(self, *values) -> None:
        """Append one table row (formatted later by the assembling Table)."""
        self.rows.append(tuple(values))

    def add_series(self, **points) -> None:
        """Append one value per named series."""
        for key, value in points.items():
            self.series.setdefault(key, []).append(value)


# The engine installs an executor here (main process only) to fan units out;
# see unit_executor().  Module-global rather than an argument so the ten
# experiment modules stay oblivious to how they are being scheduled.
_UNIT_EXECUTOR: Optional[Executor] = None


@contextmanager
def unit_executor(executor: Executor) -> Iterator[None]:
    """Route :func:`map_units` through ``executor`` inside this context.

    Unit functions (and their bound arguments) must be picklable when the
    executor crosses process boundaries — which module-level functions
    partially applied with :class:`ExperimentConfig` are.
    """
    global _UNIT_EXECUTOR
    previous = _UNIT_EXECUTOR
    _UNIT_EXECUTOR = executor
    try:
        yield
    finally:
        _UNIT_EXECUTOR = previous


class _UnitCall:
    """Picklable per-unit wrapper: telemetry capture + failure tagging.

    Runs in whatever process the executor chose.  A raising unit becomes a
    :class:`~repro.errors.UnitExecutionError` carrying the unit index and
    formatted traceback (pool futures strip both otherwise).  With
    ``capture`` set, the unit executes under a fresh tracer/registry —
    likewise ``capture_hw`` and a fresh (isolated) hardware-counter
    registry — whose buffers ride back with the result; the caller merges
    them in unit-index order, which is what makes multi-process telemetry
    deterministic.
    """

    __slots__ = ("fn", "capture", "capture_hw")

    def __init__(self, fn: Callable[[_T], _U], capture: bool, capture_hw: bool = False) -> None:
        self.fn = fn
        self.capture = capture
        self.capture_hw = capture_hw

    def __call__(
        self, indexed: tuple[int, _T]
    ) -> tuple[_U, Optional[list], Optional[dict], Optional[dict]]:
        index, item = indexed
        try:
            if not self.capture and not self.capture_hw:
                return self.fn(item), None, None, None
            tracer = registry = hw = None
            with ExitStack() as stack:
                if self.capture:
                    tracer, registry = Tracer(), MetricsRegistry()
                    stack.enter_context(tracing(tracer))
                    stack.enter_context(metrics_active(registry))
                    stack.enter_context(tracer.span("unit", index=index))
                if self.capture_hw:
                    # Isolated: the snapshot travels back and the caller
                    # merges it explicitly, so folding into an ambient
                    # registry here would double count.
                    hw = hwc.HardwareCounters()
                    stack.enter_context(hwc.counters_active(hw, isolated=True))
                result = self.fn(item)
            return (
                result,
                tracer.spans if tracer is not None else None,
                registry.snapshot() if registry is not None else None,
                hw.snapshot() if hw is not None else None,
            )
        except UnitExecutionError:
            raise
        except Exception as exc:
            raise UnitExecutionError(
                index, f"{type(exc).__name__}: {exc}", traceback.format_exc()
            ) from exc


def map_units(fn: Callable[[_T], _U], units: Sequence[_T]) -> list[_U]:
    """Order-preserving map over independent experiment units.

    Serial by default; inside a :func:`unit_executor` context the units fan
    out over the installed pool.  Results always come back in input order,
    so assembly downstream is schedule-independent.

    Two cross-cutting concerns are layered onto every unit here so the
    experiment modules stay oblivious to both: a crashing unit surfaces as
    :class:`~repro.errors.UnitExecutionError` with its index and traceback,
    and — when telemetry is active in the calling process — each unit's
    spans and metrics are captured where the unit ran and merged back *in
    unit-index order*, tagged ``unit=i`` (never by completion time, so the
    merged trace is identical at any worker count).
    """
    items = list(units)
    executor = _UNIT_EXECUTOR
    tracer = current_tracer()
    registry = current_registry()
    hw_parent = hwc.active()
    call = _UnitCall(
        fn,
        capture=tracer is not None or registry is not None,
        capture_hw=hw_parent is not None,
    )
    indexed = list(enumerate(items))
    if executor is None or len(items) <= 1:
        outputs = [call(pair) for pair in indexed]
    else:
        outputs = list(executor.map(call, indexed))
    results: list[_U] = []
    for index, (result, spans, metrics, hw_snap) in enumerate(outputs):
        if spans and tracer is not None:
            tracer.adopt(spans, unit=index)
        if metrics and registry is not None:
            registry.merge_snapshot(metrics)
        if hw_snap and hw_parent is not None:
            hw_parent.merge_snapshot(hw_snap)
        results.append(result)
    return results


def combine_units(
    units: Sequence[UnitResult], table: Table, series: dict[str, list]
) -> dict[str, float]:
    """Assemble unit outputs, in order, into a table + series; sum timings."""
    timings: dict[str, float] = {}
    for unit in units:
        for row in unit.rows:
            table.add_row(*row)
        for key, values in unit.series.items():
            series.setdefault(key, []).extend(values)
        for key, seconds in unit.timings.items():
            timings[key] = timings.get(key, 0.0) + seconds
    return timings


@contextmanager
def stage(timings: dict[str, float], name: str) -> Iterator[None]:
    """Accumulate a stage's wall-clock seconds into ``timings[name]``."""
    started = time.perf_counter()
    try:
        yield
    finally:
        timings[name] = timings.get(name, 0.0) + time.perf_counter() - started


@dataclass
class ProfiledRun:
    """One workload executed once, with everything later stages need."""

    spec: WorkloadSpec
    program: Program
    result: RunResult
    dataset: TimingDataset
    truth: dict[str, np.ndarray]


def profiled_run(
    spec: WorkloadSpec,
    config: ExperimentConfig,
    layout: Optional[ProgramLayout] = None,
    seed_offset: int = 0,
) -> ProfiledRun:
    """Run one workload and collect its timing dataset + ground truth."""
    program = spec.program()
    sensors = spec.sensors(scenario=config.scenario, rng=config.seed + seed_offset)
    result = run_program(
        program,
        config.platform,
        sensors,
        activations=config.effective_activations,
        layout=layout,
    )
    profiler = TimingProfiler(config.platform, rng=config.seed + seed_offset + 1)
    dataset = profiler.collect(result.records)
    truth = {
        proc.name: result.counters.true_branch_probabilities(proc) for proc in program
    }
    return ProfiledRun(
        spec=spec, program=program, result=result, dataset=dataset, truth=truth
    )


def tomography_thetas(
    run: ProfiledRun,
    config: ExperimentConfig,
    method: str = "hybrid",
    options: Optional[EstimationOptions] = None,
) -> dict[str, np.ndarray]:
    """Estimate every procedure's branch probabilities from the run."""
    opts = options or EstimationOptions(method=method, seed=config.seed)
    if options is not None and options.method != method:
        opts = replace(options, method=method)
    tomo = CodeTomography(run.program, config.platform)
    return tomo.estimate(run.dataset, opts).thetas
