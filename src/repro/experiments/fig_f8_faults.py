"""F8 — Profiling accuracy under deterministic fault injection.

The paper's motivating claim is that heavyweight profiling is untenable on
unreliable motes.  This figure puts a number on "unreliable": the same
workloads run under a swept fault regime (:mod:`repro.faults` — radio
loss/corruption, sensor dropouts, timer glitches, node reboots), and three
profiling schemes read the wreckage:

* **full** — exact edge instrumentation whose per-branch counter packets
  ride the same lossy radio: a lost table leaves the branch at the
  uninformed 0.5, a corrupted one yields a garbled probability;
* **tomo** — classic moment-matching tomography on whatever timing records
  survived the uplink;
* **robust** — the same records through the robust path
  (``EstimationOptions(robust=True)``): model-based outlier rejection plus
  explicit degradation instead of garbage point estimates.

Every fault decision draws from a seed stream derived from
``(config.seed, "f8", workload, rate, role)``, so units are independent of
scheduling and ``--jobs N`` output is byte-identical to serial.

At rate 0 every injector is disabled (strict no-op): ``mae_tomo`` equals
``mae_robust`` exactly and ``mae_full`` is 0.  As the rate grows, full
profiling's accuracy decays roughly linearly with its (many) lost counter
packets, while robust tomography degrades gracefully and flags the
procedures it can no longer stand behind.
"""

from __future__ import annotations

from functools import partial
from typing import Optional

import numpy as np

from repro.analysis.metrics import program_estimation_error
from repro.core import CodeTomography, EstimationOptions
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
)
from repro.faults import FaultInjector, FaultModel, collect_timing
from repro.profiling import EdgeProfiler
from repro.sim import run_program
from repro.util.tables import Table
from repro.workloads.registry import workload_by_name

__all__ = ["run", "pair_unit", "FAULT_RATES", "WORKLOADS", "BASE_FAULTS"]

FAULT_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)
WORKLOADS = ("sense", "event-detect")

#: The severity-1.0 fault mixture; ``BASE_FAULTS.scaled(rate)`` keeps the
#: blend of failure kinds constant along the sweep axis.
BASE_FAULTS = FaultModel(
    radio_loss=0.5,
    radio_corrupt=0.3,
    sensor_dropout=0.2,
    timer_glitch=0.3,
    reboot=0.1,
)


def _injector(
    model: FaultModel, config: ExperimentConfig, name: str, rate: float, role: str
) -> Optional[FaultInjector]:
    """A named-stream injector for one unit and role; None when disabled."""
    if not model.enabled:
        return None
    return FaultInjector.derived(model, config.seed, "f8", name, str(rate), role)


def _faulted_full_profile(
    program, counters, injector: Optional[FaultInjector]
) -> dict[str, np.ndarray]:
    """The exact edge profile as it survives the counter-table upload.

    Each branch's counter table is one packet on the faulty radio: a drop
    leaves the host with no information (theta falls back to 0.5); a
    corrupted payload garbles the 10-bit fixed-point probability into an
    effectively random one.
    """
    exact = EdgeProfiler(program).collect(counters).thetas
    if injector is None:
        return exact
    received: dict[str, np.ndarray] = {}
    for proc in program:  # program order: deterministic stream consumption
        theta = np.array(exact[proc.name], dtype=float)
        for k in range(theta.size):
            fate = injector.radio_outcome()
            if fate == "drop":
                theta[k] = 0.5
            elif fate == "corrupt":
                garbled = injector.corrupt_payload(int(round(theta[k] * 1023)))
                theta[k] = (garbled & 0x3FF) / 1023.0
        received[proc.name] = theta
    return received


def pair_unit(pair: tuple[str, float], config: ExperimentConfig) -> UnitResult:
    """One (workload, fault rate) cell: run faulted, profile three ways."""
    name, rate = pair
    spec = workload_by_name(name)
    program = spec.program()
    model = BASE_FAULTS.scaled(rate)

    sensors = spec.sensors(scenario=config.scenario, rng=config.seed)
    result = run_program(
        program,
        config.platform,
        sensors,
        activations=config.effective_activations,
        faults=_injector(model, config, name, rate, "exec"),
    )
    truth = {
        proc.name: result.counters.true_branch_probabilities(proc) for proc in program
    }

    dataset, stats = collect_timing(
        config.platform,
        result.records,
        faults=_injector(model, config, name, rate, "collect"),
        rng=config.seed + 1,
    )

    tomo = CodeTomography(program, config.platform)
    classic = tomo.estimate(
        dataset, EstimationOptions(method="moments", seed=config.seed)
    )
    robust = tomo.estimate(
        dataset, EstimationOptions(method="moments", seed=config.seed, robust=True)
    )
    full = _faulted_full_profile(
        program, result.counters, _injector(model, config, name, rate, "fullprof")
    )

    mae_full = program_estimation_error(full, truth, "mae")
    mae_tomo = program_estimation_error(classic.thetas, truth, "mae")
    mae_robust = program_estimation_error(robust.thetas, truth, "mae")
    degraded = sum(1 for est in robust.estimates.values() if est.degraded)
    rejected = sum(est.n_rejected for est in robust.estimates.values())

    unit = UnitResult()
    unit.add_row(
        name,
        rate,
        mae_full,
        mae_tomo,
        mae_robust,
        stats.delivered_fraction,
        rejected,
        degraded,
    )
    unit.add_series(
        workload=name,
        fault_rate=rate,
        mae_full=mae_full,
        mae_tomo=mae_tomo,
        mae_robust=mae_robust,
        delivered_fraction=stats.delivered_fraction,
        degraded_procs=degraded,
    )
    return unit


def run(config: ExperimentConfig) -> ExperimentResult:
    """Tomography vs full profiling accuracy across the fault-rate sweep."""
    table = Table(
        "F8: profiling accuracy under fault injection",
        [
            "workload",
            "fault_rate",
            "mae_full",
            "mae_tomo",
            "mae_robust",
            "delivered",
            "rejected",
            "degraded",
        ],
        digits=4,
    )
    series: dict[str, list] = {
        "workload": [],
        "fault_rate": [],
        "mae_full": [],
        "mae_tomo": [],
        "mae_robust": [],
        "delivered_fraction": [],
        "degraded_procs": [],
    }
    pairs = [(name, rate) for name in WORKLOADS for rate in FAULT_RATES]
    units = map_units(partial(pair_unit, config=config), pairs)
    timings = combine_units(units, table, series)
    return ExperimentResult(
        experiment_id="f8",
        title="profiling under fault injection",
        tables=[table],
        series=series,
        timings=timings,
        notes=[
            "Shape check: at rate 0 full profiling is exact (mae_full = 0) and "
            "mae_tomo equals mae_robust bit-for-bit (the fault layer is a "
            "strict no-op); as the rate grows, mae_full climbs with every lost "
            "counter packet while the robust path rejects implausible records "
            "and flags procedures it can no longer estimate as degraded."
        ],
    )
