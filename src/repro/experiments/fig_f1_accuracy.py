"""F1 — Branch-probability estimation accuracy per workload.

The headline accuracy figure: how close the tomography estimate gets to the
instrumented ground truth on every benchmark, with the PC-sampling profiler
as the conventional lightweight alternative.  Reported as per-branch pooled
MAE (and worst branch), one bar group per workload.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.metrics import program_estimation_error
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
    profiled_run,
    stage,
    tomography_thetas,
)
from repro.profiling import SamplingProfiler
from repro.util.tables import Table
from repro.workloads.registry import all_workloads, workload_by_name

__all__ = ["run", "workload_unit", "SAMPLING_INTERVAL_CYCLES"]

SAMPLING_INTERVAL_CYCLES = 4096


def workload_unit(name: str, config: ExperimentConfig) -> UnitResult:
    """Profile one workload, estimate with both methods, score both."""
    spec = workload_by_name(name)
    unit = UnitResult()
    with stage(unit.timings, f"profile:{name}"):
        run_data = profiled_run(spec, config)
    with stage(unit.timings, f"estimate:{name}"):
        tomo = tomography_thetas(run_data, config, method="hybrid")
    sampler = SamplingProfiler(
        run_data.program,
        config.platform,
        interval_cycles=SAMPLING_INTERVAL_CYCLES,
        rng=config.seed + 17,
    )
    sampled = sampler.collect(run_data.result.counters, run_data.result.total_cycles)
    for estimator, thetas in (
        ("code-tomography", tomo),
        ("pc-sampling", sampled.thetas),
    ):
        mae = program_estimation_error(thetas, run_data.truth, "mae")
        worst = program_estimation_error(thetas, run_data.truth, "max")
        unit.add_row(spec.name, estimator, mae, worst)
        unit.add_series(workload=spec.name, estimator=estimator, mae=mae)
    return unit


def run(config: ExperimentConfig) -> ExperimentResult:
    """Estimate every workload with tomography and PC sampling; score both."""
    table = Table(
        "F1: branch-probability estimation error (per-branch pooled)",
        ["workload", "estimator", "mae", "max_err"],
        digits=4,
    )
    series: dict[str, list] = {"workload": [], "estimator": [], "mae": []}
    units = map_units(
        partial(workload_unit, config=config), [s.name for s in all_workloads()]
    )
    timings = combine_units(units, table, series)
    return ExperimentResult(
        experiment_id="f1",
        title="estimation accuracy per workload",
        tables=[table],
        series=series,
        timings=timings,
        notes=[
            "Shape check: tomography MAE beats PC sampling on the suite "
            "aggregate and stays well under 0.10 wherever branches are "
            "timing-visible; branches with near-equal-cost arms are "
            "structurally invisible to any timing-based method (flagged by "
            "repro.core.identifiability, discussed in EXPERIMENTS.md)."
        ],
    )
