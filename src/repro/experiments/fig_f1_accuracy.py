"""F1 — Branch-probability estimation accuracy per workload.

The headline accuracy figure: how close the tomography estimate gets to the
instrumented ground truth on every benchmark, with the PC-sampling profiler
as the conventional lightweight alternative.  Reported as per-branch pooled
MAE (and worst branch), one bar group per workload.
"""

from __future__ import annotations

from repro.analysis.metrics import program_estimation_error
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    profiled_run,
    tomography_thetas,
)
from repro.profiling import SamplingProfiler
from repro.util.tables import Table
from repro.workloads.registry import all_workloads

__all__ = ["run", "SAMPLING_INTERVAL_CYCLES"]

SAMPLING_INTERVAL_CYCLES = 4096


def run(config: ExperimentConfig) -> ExperimentResult:
    """Estimate every workload with tomography and PC sampling; score both."""
    table = Table(
        "F1: branch-probability estimation error (per-branch pooled)",
        ["workload", "estimator", "mae", "max_err"],
        digits=4,
    )
    series: dict[str, list] = {"workload": [], "estimator": [], "mae": []}
    for spec in all_workloads():
        run_data = profiled_run(spec, config)
        tomo = tomography_thetas(run_data, config, method="hybrid")
        sampler = SamplingProfiler(
            run_data.program,
            config.platform,
            interval_cycles=SAMPLING_INTERVAL_CYCLES,
            rng=config.seed + 17,
        )
        sampled = sampler.collect(run_data.result.counters, run_data.result.total_cycles)
        for estimator, thetas in (
            ("code-tomography", tomo),
            ("pc-sampling", sampled.thetas),
        ):
            mae = program_estimation_error(thetas, run_data.truth, "mae")
            worst = program_estimation_error(thetas, run_data.truth, "max")
            table.add_row(spec.name, estimator, mae, worst)
            series["workload"].append(spec.name)
            series["estimator"].append(estimator)
            series["mae"].append(mae)
    return ExperimentResult(
        experiment_id="f1",
        title="estimation accuracy per workload",
        tables=[table],
        series=series,
        notes=[
            "Shape check: tomography MAE beats PC sampling on the suite "
            "aggregate and stays well under 0.10 wherever branches are "
            "timing-visible; branches with near-equal-cost arms are "
            "structurally invisible to any timing-based method (flagged by "
            "repro.core.identifiability, discussed in EXPERIMENTS.md)."
        ],
    )
