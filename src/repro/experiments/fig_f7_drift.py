"""F7 (extension) — tracking branch-probability drift over time.

Not in the original evaluation: this exercises the continuous-profiling
extension that the overhead numbers (T2) make plausible.  A single-branch
probe program watches a channel whose mean drifts sinusoidally (the
``drifting`` scenario's diurnal model); the timing stream is sliced into
epochs and re-estimated per epoch.  The reconstructed trajectory must move
with the drift and trip the drift detector, while the same machinery on
stationary inputs stays flat and quiet.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.core.drift import detect_drift, estimate_epochs
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
)
from repro.lang import compile_source
from repro.profiling import TimingProfiler
from repro.sim import ProgramTimingModel, run_program
from repro.util.tables import Table
from repro.workloads.inputs import build_sensors

__all__ = ["run", "scenario_unit", "PROBE_SOURCE", "EPOCHS", "SCENARIOS"]

# One strongly timing-visible branch: P(sense > 700) under the scenario.
PROBE_SOURCE = """
proc main() {
    var v = sense(ch);
    if (v > 700) {
        send(v);
    }
    led(0);
}
"""

EPOCHS = 6
SCENARIOS = ("default", "drifting")
_CHANNELS = {"ch": (620.0, 120.0)}


def _track(config: ExperimentConfig, scenario: str):
    program = compile_source(PROBE_SOURCE, "drift-probe")
    sensors = build_sensors(_CHANNELS, scenario=scenario, rng=config.seed)
    result = run_program(
        program, config.platform, sensors, activations=config.effective_activations
    )
    dataset = TimingProfiler(config.platform, rng=config.seed + 1).collect(
        result.records
    )
    model = ProgramTimingModel(program, config.platform).procedure_model("main", {})
    durations = dataset.durations("main")
    epoch_size = max(len(durations) // EPOCHS, 50)
    return estimate_epochs(
        model,
        durations,
        epoch_size=epoch_size,
        timer=config.platform.timer,
        rng=config.seed,
    )


def scenario_unit(scenario: str, config: ExperimentConfig) -> UnitResult:
    """Track one input scenario's per-epoch trajectory (one batchable unit)."""
    track = _track(config, scenario)
    events = detect_drift(track, threshold=0.07)
    unit = UnitResult()
    for epoch in range(track.n_epochs):
        theta = float(track.thetas[epoch, 0])
        unit.add_row(scenario, epoch, theta, track.n_samples[epoch])
        unit.add_series(scenario=scenario, epoch=epoch, theta=theta)
    unit.add_series(
        total_variation=(scenario, float(track.total_variation()[0])),
        drift_events=(scenario, len(events)),
    )
    return unit


def run(config: ExperimentConfig) -> ExperimentResult:
    """Epoch-sliced estimation under stationary vs drifting inputs."""
    table = Table(
        "F7: per-epoch estimate of P(reading > 700) on the drift probe",
        ["scenario", "epoch", "theta", "n_samples"],
    )
    series: dict[str, list] = {
        "scenario": [],
        "epoch": [],
        "theta": [],
        "total_variation": [],
        "drift_events": [],
    }
    units = map_units(partial(scenario_unit, config=config), SCENARIOS)
    timings = combine_units(units, table, series)
    return ExperimentResult(
        experiment_id="f7",
        title="drift tracking (extension)",
        tables=[table],
        series=series,
        timings=timings,
        notes=[
            "Shape check: total variation of the per-epoch estimate is "
            "several times larger under the drifting scenario, and the "
            "drift detector fires there but not (or barely) on stationary "
            "inputs."
        ],
    )
