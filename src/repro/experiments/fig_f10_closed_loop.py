"""F10 — Closed-loop continuous PGO on drifting traces.

The deployment question behind the whole continuous-profiling story: when
the input regime drifts, how much of the lost placement benefit does a
**closed loop** (drift alarm → re-estimate → re-place → hot-swap → audit →
maybe roll back) win back, compared to a *static* layout frozen at deploy
time and a clairvoyant *oracle* that re-places every segment with the true
probabilities and zero latency?

Each workload runs the same long drifting trace under all three policies —
identical per-segment sensor streams, so branch outcomes (which are
layout-invariant) match activation for activation and the policies differ
only in control-transfer cost.  The drift schedules are chosen to exercise
both failure and success modes of closed-loop re-placement:

* ``probe`` sees a **transient spike shorter than the loop's own
  detect-and-relearn latency**: by the time the alarm has fired and the
  relearn window has filled, the spike regime is already gone, so the
  candidate layout was fit on stale evidence — it flips a hot branch the
  world has flipped back, the trial segment regresses hard, and the
  controller must *roll back*.  Later a **sustained shift** of the same
  magnitude arrives, which the loop should re-place for and commit.
* ``sense`` sees one sustained regime change: the clean commit path.

Everything is deterministic for a seed (per-segment sensor and profiler
streams derive from it), and units are independent, so the rendered result
is byte-identical at any ``--jobs``.
"""

from __future__ import annotations

from collections import Counter
from functools import partial
from typing import Callable, Optional

import numpy as np

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
)
from repro.ir.program import Program
from repro.lang import compile_source
from repro.markov.builders import BranchParameterization
from repro.mote.platform import Platform
from repro.mote.sensors import IIDSensor, SensorSuite
from repro.pgo import PGOConfig, PGOController, SegmentMetrics
from repro.placement.layout import ProgramLayout
from repro.placement.refine import optimize_refined_program_layout
from repro.sim.interpreter import Interpreter
from repro.util.rng import derive_rng
from repro.util.tables import Table
from repro.workloads.registry import workload_by_name

__all__ = ["run", "workload_unit", "WORKLOADS", "POLICIES", "PROBE_SOURCE"]

WORKLOADS = ("probe", "sense")
POLICIES = ("static", "closed-loop", "oracle")

#: Activations per segment (a segment is the regime/swap granularity).
_FULL_ACTS = 250
_QUICK_ACTS = 60

#: The engineered staleness-hazard workload: one reading gates an
#: 8-iteration filter loop (the hot branch, amplified 8x per activation)
#: and a rare report.  The spike regime inverts the hot branch, so a
#: re-placement fit on spike shards flips its layout direction — correct
#: while the spike lasts, catastrophic the segment after it ends.
PROBE_SOURCE = """
# Probe: one reading gates an 8-iteration filter loop and a rare report.
global acc = 0;

proc main() {
    var v = sense(ch);
    var i = 0;
    while (i < 8) {
        if (v > 700) {
            acc = acc + v;
            acc = acc - (acc / 8);
            acc = acc + (v / 4);
        }
        i = i + 1;
    }
    if (v > 980) {
        send(acc);
        acc = 0;
    }
}
"""

#: Per-workload input regimes: channel -> (mean, std) ADC counts.
_REGIMES: dict[str, dict[str, dict[str, tuple[float, float]]]] = {
    # P(v > 700): A ~0.12, B ~0.98 — regime B inverts the hot branch.
    "probe": {
        "A": {"ch": (520.0, 150.0)},
        "B": {"ch": (1000.0, 150.0)},
    },
    # P(light > 768): A ~0.12, B ~0.73.
    "sense": {
        "A": {"light": (520.0, 210.0)},
        "B": {"light": (900.0, 210.0)},
    },
}

#: Drift schedules: (segment count, regime) phases, in order.  The probe
#: spike (3 segments of B) is exactly as long as the loop's reaction
#: latency — one segment to alarm plus ``relearn_shards`` to refit — so the
#: swap lands one segment *after* the regime has snapped back to A: the
#: stale-evidence trap.  The final sustained B phase is the same shift held
#: long enough that re-placing for it is correct.
_PHASES: dict[str, tuple[tuple[int, str], ...]] = {
    "probe": ((10, "A"), (3, "B"), (7, "A"), (10, "B")),
    "sense": ((12, "A"), (18, "B")),
}


def _program(name: str) -> Program:
    if name == "probe":
        return compile_source(PROBE_SOURCE, name="probe", entry="main")
    return workload_by_name(name).program()


def _segment_regimes(name: str) -> list[dict[str, tuple[float, float]]]:
    """The per-segment channel parameters, phases expanded."""
    regimes = _REGIMES[name]
    out: list[dict[str, tuple[float, float]]] = []
    for count, regime in _PHASES[name]:
        out.extend([regimes[regime]] * count)
    return out


def _sensors(
    channels: dict[str, tuple[float, float]], seed: int, name: str, segment: int
) -> SensorSuite:
    """A fresh suite per (workload, segment): identical streams across arms."""
    return SensorSuite(
        {ch: IIDSensor(mean, std) for ch, (mean, std) in channels.items()},
        rng=derive_rng(seed, "f10", name, "sensors", segment),
    )


def _segment_truth(
    program: Program, after: Counter, before: Counter
) -> dict[str, np.ndarray]:
    """Ground-truth branch probabilities from one segment's edge deltas."""
    thetas: dict[str, np.ndarray] = {}
    for proc in program:
        par = BranchParameterization(proc.cfg)
        theta = np.empty(par.n_parameters)
        for k, label in enumerate(par.branch_labels):
            then_key = (proc.name, label, "then")
            else_key = (proc.name, label, "else")
            t = after[then_key] - before[then_key]
            e = after[else_key] - before[else_key]
            theta[k] = t / (t + e) if t + e else 0.5
        thetas[proc.name] = theta
    return thetas


def _run_arm(
    program: Program,
    platform: Platform,
    name: str,
    seed: int,
    activations: int,
    regimes: list[dict[str, tuple[float, float]]],
    layout_for_segment: Callable[[int], ProgramLayout],
) -> tuple[list[SegmentMetrics], list[dict[str, np.ndarray]], int]:
    """Run one open-loop policy over the trace; returns metrics/truth/swaps.

    The layout schedule is a function of the segment index; a structural
    change between consecutive segments is applied as a hot swap (counted),
    exactly the mechanism the closed loop uses — so static, oracle, and
    closed-loop pay identical swap mechanics.
    """
    interp: Optional[Interpreter] = None
    metrics: list[SegmentMetrics] = []
    truths: list[dict[str, np.ndarray]] = []
    swaps = 0
    for i, channels in enumerate(regimes):
        sensors = _sensors(channels, seed, name, i)
        layout = layout_for_segment(i)
        if interp is None:
            interp = Interpreter(program, platform, sensors, layout=layout)
        else:
            interp.set_sensors(sensors)
            if layout != interp.layout:
                interp.hot_swap_layout(layout)
                swaps += 1
        edges_before = Counter(interp.counters.edge_counts)
        c = interp.counters
        before = (
            c.branches_executed,
            c.taken_total,
            c.mispredict_total,
            interp.cycle,
            c.sense_reads,
            interp.radio.transmissions,
        )
        for _ in range(activations):
            interp.run_activation()
        interp.records.clear()
        d_cycles = interp.cycle - before[3]
        d_senses = c.sense_reads - before[4]
        d_txs = interp.radio.transmissions - before[5]
        metrics.append(
            SegmentMetrics(
                segment=i,
                activations=activations,
                branches=c.branches_executed - before[0],
                taken=c.taken_total - before[1],
                mispredicts=c.mispredict_total - before[2],
                cycles=d_cycles,
                sense_reads=d_senses,
                transmissions=d_txs,
                energy_mj=platform.energy.total_mj(
                    cycles=d_cycles, conversions=d_senses, packets=d_txs
                ),
                compute_mj=platform.energy.total_mj(
                    cycles=d_cycles, conversions=d_senses, packets=0
                ),
            )
        )
        truths.append(_segment_truth(program, interp.counters.edge_counts, edges_before))
    return metrics, truths, swaps


def _totals(metrics: list[SegmentMetrics]) -> tuple[int, int, float, float]:
    """(mispredicts, branches, energy_mj, compute_mj) summed over the trace."""
    return (
        sum(m.mispredicts for m in metrics),
        sum(m.branches for m in metrics),
        sum(m.energy_mj for m in metrics),
        sum(m.compute_mj for m in metrics),
    )


def workload_unit(name: str, config: ExperimentConfig) -> UnitResult:
    """Run one workload's drifting trace under all three policies."""
    activations = _QUICK_ACTS if config.quick else _FULL_ACTS
    program = _program(name)
    platform = config.platform
    regimes = _segment_regimes(name)
    seed = config.seed

    # Deploy-time calibration: profile the first regime under source order,
    # freeze the resulting layout.  All three policies start from it.
    _, calib_truth, _ = _run_arm(
        program,
        platform,
        name,
        seed,
        activations,
        regimes[:1],
        lambda i: ProgramLayout.source_order(program),
    )
    static_layout = optimize_refined_program_layout(program, calib_truth[0], platform)

    static_metrics, truths, _ = _run_arm(
        program, platform, name, seed, activations, regimes, lambda i: static_layout
    )

    # The oracle re-places every segment from that segment's *true*
    # probabilities with zero latency — the upper bound on any reactive loop.
    oracle_layouts = [
        optimize_refined_program_layout(program, t, platform) for t in truths
    ]
    oracle_metrics, _, oracle_swaps = _run_arm(
        program, platform, name, seed, activations, regimes, lambda i: oracle_layouts[i]
    )

    controller = PGOController(
        program, platform, config=PGOConfig(), initial_layout=static_layout
    )
    for i, channels in enumerate(regimes):
        controller.run_segment(
            _sensors(channels, seed, name, i),
            activations,
            profiler_rng=derive_rng(seed, "f10", name, "profiler", i),
        )
    closed_metrics = [r.metrics for r in controller.reports]

    unit = UnitResult()
    static_mp, _, static_energy, static_compute = _totals(static_metrics)
    oracle_mp, _, _, _ = _totals(oracle_metrics)
    per_policy = {
        "static": (static_metrics, 0, 0),
        "closed-loop": (closed_metrics, controller.swaps, controller.rollbacks),
        "oracle": (oracle_metrics, oracle_swaps, 0),
    }
    for policy in POLICIES:
        p_metrics, swaps, rollbacks = per_policy[policy]
        mispredicts, branches, energy, compute = _totals(p_metrics)
        saved = (static_mp - mispredicts) / static_mp if static_mp else 0.0
        achievable = static_mp - oracle_mp
        captured = (static_mp - mispredicts) / achievable if achievable > 0 else 0.0
        unit.add_row(
            name,
            policy,
            mispredicts,
            mispredicts / branches if branches else 0.0,
            energy,
            compute,
            swaps,
            rollbacks,
            saved,
            captured,
        )
        unit.add_series(
            workload=name,
            policy=policy,
            mispredicts=mispredicts,
            mispredict_rate=mispredicts / branches if branches else 0.0,
            energy_mj=energy,
            compute_mj=compute,
            swaps=swaps,
            rollbacks=rollbacks,
            saved=saved,
            captured=captured,
        )
    # The closed loop's decision timeline (non-hold actions only), for the
    # second table: this is where a reader checks the rollback actually
    # happened where the schedule laid its trap.
    for report in controller.reports:
        if report.action in ("alarm", "swap", "commit", "rollback"):
            unit.add_series(
                timeline_workload=name,
                timeline_segment=report.segment,
                timeline_action=report.action,
                timeline_rate=report.metrics.mispredict_rate,
            )
    unit.add_series(
        energy_static=static_energy,
        energy_closed=_totals(closed_metrics)[2],
        compute_static=static_compute,
        compute_closed=_totals(closed_metrics)[3],
    )
    return unit


def run(config: ExperimentConfig) -> ExperimentResult:
    """Static vs closed-loop vs oracle re-placement over drifting traces."""
    table = Table(
        "F10: cumulative cost over a drifting trace, per re-placement policy",
        [
            "workload",
            "policy",
            "mispredicts",
            "mp_rate",
            "energy_mj",
            "compute_mj",
            "swaps",
            "rollbacks",
            "saved",
            "captured",
        ],
        digits=4,
    )
    timeline = Table(
        "F10: closed-loop decision timeline (non-hold actions)",
        ["workload", "segment", "action", "seg_mp_rate"],
        digits=4,
    )
    series: dict[str, list] = {}
    units = map_units(partial(workload_unit, config=config), WORKLOADS)
    timings = combine_units(units, table, series)
    for i in range(len(series.get("timeline_workload", []))):
        timeline.add_row(
            series["timeline_workload"][i],
            series["timeline_segment"][i],
            series["timeline_action"][i],
            series["timeline_rate"][i],
        )
    return ExperimentResult(
        experiment_id="f10",
        title="closed-loop continuous PGO under drift",
        tables=[table, timeline],
        series=series,
        timings=timings,
        notes=[
            "All policies replay identical per-segment sensor streams; branch "
            "outcomes are layout-invariant, so the policies differ only in "
            "control-transfer cost (mispredicts, cycles, energy).",
            "saved = mispredicts avoided vs the static layout; captured = "
            "fraction of the oracle's achievable saving the policy realized. "
            "compute_mj excludes radio energy (transmissions are decided by "
            "the data path, identical across policies).",
            "The probe schedule's short spike is a staleness trap: it ends "
            "inside the loop's own detect-and-relearn latency, so the swap "
            "deploys a layout fit on a dead regime one segment too late — "
            "the trial-segment audit must catch it and roll back.",
        ],
    )
