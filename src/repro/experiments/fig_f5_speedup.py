"""F5 — Whole-program cycle reduction from tomography-guided placement.

Mispredictions cost cycles, so F4's improvements should surface as runtime:
this figure reports cycles per activation for each placement strategy and
the speedup of the profiled placements over source order, on fresh inputs.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    profiled_run,
    tomography_thetas,
)
from repro.placement import optimize_program_layout, random_program_layout
from repro.sim import run_program
from repro.util.tables import Table
from repro.workloads.registry import all_workloads

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Cycles/activation per strategy plus speedups over source order."""
    table = Table(
        "F5: cycles per activation and speedup by placement strategy",
        ["workload", "strategy", "cycles_per_act", "speedup_vs_source"],
        digits=4,
    )
    series: dict[str, list] = {"workload": [], "strategy": [], "speedup": []}
    for spec in all_workloads():
        profile_data = profiled_run(spec, config)
        tomo_thetas = tomography_thetas(profile_data, config)
        layouts = {
            "source-order": None,
            "random": random_program_layout(profile_data.program, rng=config.seed),
            "tomography": optimize_program_layout(profile_data.program, tomo_thetas),
            "oracle": optimize_program_layout(profile_data.program, profile_data.truth),
        }
        cycles: dict[str, float] = {}
        for strategy, layout in layouts.items():
            sensors = spec.sensors(scenario=config.scenario, rng=config.seed + 1000)
            result = run_program(
                profile_data.program,
                config.platform,
                sensors,
                activations=config.effective_activations,
                layout=layout,
            )
            cycles[strategy] = result.cycles_per_activation
        base = cycles["source-order"]
        for strategy in ("source-order", "random", "tomography", "oracle"):
            speedup = base / cycles[strategy] if cycles[strategy] > 0 else float("nan")
            table.add_row(spec.name, strategy, cycles[strategy], speedup)
            series["workload"].append(spec.name)
            series["strategy"].append(strategy)
            series["speedup"].append(speedup)
    return ExperimentResult(
        experiment_id="f5",
        title="cycle reduction from placement",
        tables=[table],
        series=series,
        notes=[
            "Shape check: tomography speedup ≈ oracle speedup, both ≥ 1.0 "
            "on aggregate (branch costs are a minority of total cycles, so "
            "gains are percent-level, as on real motes)."
        ],
    )
