"""F5 — Whole-program cycle reduction from tomography-guided placement.

Mispredictions cost cycles, so F4's improvements should surface as runtime:
this figure reports cycles per activation for each placement strategy and
the speedup of the profiled placements over source order, on fresh inputs.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
    profiled_run,
    tomography_thetas,
)
from repro.placement import optimize_program_layout, random_program_layout
from repro.sim import run_program
from repro.util.tables import Table
from repro.workloads.registry import all_workloads, workload_by_name

__all__ = ["run", "workload_unit"]


def workload_unit(name: str, config: ExperimentConfig) -> UnitResult:
    """Cycles/activation for every placement strategy on one workload."""
    spec = workload_by_name(name)
    profile_data = profiled_run(spec, config)
    tomo_thetas = tomography_thetas(profile_data, config)
    layouts = {
        "source-order": None,
        "random": random_program_layout(profile_data.program, rng=config.seed),
        "tomography": optimize_program_layout(profile_data.program, tomo_thetas),
        "oracle": optimize_program_layout(profile_data.program, profile_data.truth),
    }
    cycles: dict[str, float] = {}
    for strategy, layout in layouts.items():
        sensors = spec.sensors(scenario=config.scenario, rng=config.seed + 1000)
        result = run_program(
            profile_data.program,
            config.platform,
            sensors,
            activations=config.effective_activations,
            layout=layout,
        )
        cycles[strategy] = result.cycles_per_activation
    base = cycles["source-order"]
    unit = UnitResult()
    for strategy in ("source-order", "random", "tomography", "oracle"):
        speedup = base / cycles[strategy] if cycles[strategy] > 0 else float("nan")
        unit.add_row(spec.name, strategy, cycles[strategy], speedup)
        unit.add_series(workload=spec.name, strategy=strategy, speedup=speedup)
    return unit


def run(config: ExperimentConfig) -> ExperimentResult:
    """Cycles/activation per strategy plus speedups over source order."""
    table = Table(
        "F5: cycles per activation and speedup by placement strategy",
        ["workload", "strategy", "cycles_per_act", "speedup_vs_source"],
        digits=4,
    )
    series: dict[str, list] = {"workload": [], "strategy": [], "speedup": []}
    units = map_units(
        partial(workload_unit, config=config), [s.name for s in all_workloads()]
    )
    timings = combine_units(units, table, series)
    return ExperimentResult(
        experiment_id="f5",
        title="cycle reduction from placement",
        tables=[table],
        series=series,
        timings=timings,
        notes=[
            "Shape check: tomography speedup ≈ oracle speedup, both ≥ 1.0 "
            "on aggregate (branch costs are a minority of total cycles, so "
            "gains are percent-level, as on real motes)."
        ],
    )
