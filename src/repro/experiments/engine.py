"""Parallel execution engine for the experiment suite.

The suite's unit of work is embarrassingly parallel twice over — the ten
experiment ids are mutually independent, and within one experiment the
batchable units (see :mod:`repro.experiments.common`) are too — yet the
original CLI ran everything on one core.  This module fans both levels out
over a :class:`~concurrent.futures.ProcessPoolExecutor` while preserving the
repository's reproducibility contract:

**Determinism.** Every experiment derives all randomness from its
:class:`ExperimentConfig` (seeds fan out via the SeedSequence scheme in
:mod:`repro.util.rng`), units are mapped and reassembled in input order, and
wall-clock diagnostics live outside the rendered tables — so for a fixed
seed the rendered output is *byte-identical* at any ``jobs`` count,
including ``jobs=1`` serial runs.

**Caching.** Results are content-addressed by a SHA-256 fingerprint of the
experiment id plus every config field (and the cache format + package
version), stored as JSON under ``.repro-cache/``.  Re-running an unchanged
configuration loads the stored tables verbatim; any config change produces a
different key, so invalidation is automatic.

**Fault isolation.** A failing experiment no longer aborts the run: the
engine records the failure and keeps going, reporting everything at the
end (:class:`ExperimentOutcome.error`).

Scheduling policy: with several pending experiments the pool fans out
*across* experiment ids (coarse grain, zero intra-experiment overhead);
with a single pending experiment and ``jobs > 1`` it instead fans out that
experiment's units via :func:`repro.experiments.common.unit_executor`.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback as traceback_mod
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import repro
from repro import obs
from repro.errors import UnitExecutionError
from repro.experiments.common import ExperimentConfig, ExperimentResult, unit_executor
from repro.obs import MetricsRegistry, SpanRecord, Tracer
from repro.obs import counters as hwc
from repro.profiling.serialize import (
    experiment_result_from_json,
    experiment_result_to_json,
)

__all__ = [
    "CACHE_FORMAT",
    "DEFAULT_CACHE_DIR",
    "ExperimentOutcome",
    "ProgressEvent",
    "ResultCache",
    "config_fingerprint",
    "run_experiments",
]

CACHE_FORMAT = 1
DEFAULT_CACHE_DIR = Path(".repro-cache")


# --------------------------------------------------------------------------
# Outcomes and progress
# --------------------------------------------------------------------------


#: Cap on the traceback text an outcome carries (the useful frames are at
#: the tail, so truncation keeps the *end* of the traceback).
TRACEBACK_LIMIT_CHARS = 2000


def _truncated_traceback(text: str) -> str:
    if len(text) <= TRACEBACK_LIMIT_CHARS:
        return text
    return "... [traceback truncated] ...\n" + text[-TRACEBACK_LIMIT_CHARS:]


@dataclass
class ExperimentOutcome:
    """What the engine hands back for one requested experiment id.

    On failure, ``error`` is a one-line summary (including the failing unit
    index when the crash happened inside a batchable unit — also exposed as
    ``failed_unit``) and ``traceback`` carries the tail of the formatted
    traceback from the process where the crash occurred.  When the run was
    observed (``run_experiments(..., observe=True)``), ``spans`` and
    ``metrics`` hold the telemetry captured in whichever process executed
    the experiment; with ``counters=True``, ``hw_counters`` holds the
    hardware-counter snapshot the same way.
    """

    experiment_id: str
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    seconds: float = 0.0
    cached: bool = False
    failed_unit: Optional[int] = None
    traceback: Optional[str] = None
    spans: list[SpanRecord] = field(default_factory=list)
    metrics: Optional[dict] = None
    hw_counters: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """True when the experiment produced a result (live or cached)."""
        return self.result is not None and self.error is None


@dataclass(frozen=True)
class ProgressEvent:
    """One scheduling event, delivered to the CLI's ``--progress`` printer."""

    kind: str  # "start" | "done" | "cached" | "failed"
    experiment_id: str
    completed: int
    total: int
    seconds: float = 0.0
    error: Optional[str] = None


ProgressFn = Callable[[ProgressEvent], None]


# --------------------------------------------------------------------------
# Content-addressed result cache
# --------------------------------------------------------------------------


def config_fingerprint(experiment_id: str, config: ExperimentConfig) -> str:
    """SHA-256 content address of one (experiment, configuration) pair.

    Every field that can influence an experiment's output participates:
    the platform (its frozen-dataclass ``repr`` covers timer, predictor,
    cost model, energy, and memory parameters), activation count, seed,
    quick mode, and scenario — plus the cache format and package version so
    upgrades never serve stale layouts.  Changing any knob therefore
    changes the key, which is the cache's entire invalidation story.
    """
    payload = {
        "cache_format": CACHE_FORMAT,
        "repro_version": getattr(repro, "__version__", "unknown"),
        "experiment_id": experiment_id,
        "platform": repr(config.platform),
        "activations": config.activations,
        "seed": config.seed,
        "quick": config.quick,
        "scenario": config.scenario,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Disk cache mapping config fingerprints to serialized results.

    Layout: one ``<fingerprint>.json`` per result under ``root`` (flat —
    the suite has tens of configurations, not millions).  Corrupt or
    unreadable entries behave as misses; writes go through a temp file +
    rename so a crashed run never leaves a half-written entry behind.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def path_for(self, experiment_id: str, config: ExperimentConfig) -> Path:
        return self.root / f"{config_fingerprint(experiment_id, config)}.json"

    def load(
        self, experiment_id: str, config: ExperimentConfig
    ) -> Optional[ExperimentResult]:
        """The cached result, or ``None`` on miss/corruption."""
        path = self.path_for(experiment_id, config)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            result = experiment_result_from_json(text)
        except Exception:
            # A truncated or stale-format entry must never kill a run;
            # treat it as a miss and let the live run overwrite it.
            return None
        if result.experiment_id != experiment_id:
            return None
        return result

    def store(
        self, experiment_id: str, config: ExperimentConfig, result: ExperimentResult
    ) -> Path:
        """Persist one result atomically; returns the entry's path."""
        path = self.path_for(experiment_id, config)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(experiment_result_to_json(result))
        tmp.replace(path)
        return path


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------


def _execute(
    experiment_id: str,
    config: ExperimentConfig,
    observe: bool = False,
    counters: bool = False,
) -> ExperimentOutcome:
    """Run one experiment, capturing failure instead of propagating it.

    Module-level so it pickles into pool workers.  Catches ``Exception``
    broadly (not just :class:`~repro.errors.ExperimentError`): any crash in
    one experiment must be reported at exit, not abort the other nine.

    With ``observe``, the experiment runs under a fresh tracer and metrics
    registry regardless of which process this is: the captured spans and
    snapshot travel back on the outcome and the *parent* merges them in
    experiment-request order (never completion order), so an observed
    parallel run produces the same artifact structure as a serial one.
    ``counters`` does the same for hardware-counter telemetry — a fresh
    isolated registry per experiment, snapshot on ``outcome.hw_counters``.
    """
    from repro.experiments import ALL_EXPERIMENTS  # deferred: import cycle

    started = time.perf_counter()
    tracer = Tracer() if observe else None
    registry = MetricsRegistry() if observe else None
    hw = hwc.HardwareCounters() if counters else None

    def telemetry(outcome: ExperimentOutcome) -> ExperimentOutcome:
        if tracer is not None:
            outcome.spans = tracer.spans
        if registry is not None:
            outcome.metrics = registry.snapshot()
        if hw is not None:
            outcome.hw_counters = hw.snapshot()
        return outcome

    try:
        with ExitStack() as stack:
            if observe:
                stack.enter_context(obs.tracing(tracer))
                stack.enter_context(obs.metrics_active(registry))
                stack.enter_context(tracer.span("experiment", id=experiment_id))
            if counters:
                # Isolated: the parent merges the returned snapshot in
                # request order; auto-folding here would double count.
                stack.enter_context(hwc.counters_active(hw, isolated=True))
            result = ALL_EXPERIMENTS[experiment_id](config)
    except Exception as exc:  # noqa: BLE001 - fault isolation is the point
        failed_unit = exc.unit_index if isinstance(exc, UnitExecutionError) else None
        traceback = (
            exc.traceback_str
            if isinstance(exc, UnitExecutionError) and exc.traceback_str
            else traceback_mod.format_exc()
        )
        return telemetry(
            ExperimentOutcome(
                experiment_id=experiment_id,
                error=f"{type(exc).__name__}: {exc}",
                seconds=time.perf_counter() - started,
                failed_unit=failed_unit,
                traceback=_truncated_traceback(traceback),
            )
        )
    return telemetry(
        ExperimentOutcome(
            experiment_id=experiment_id,
            result=result,
            seconds=time.perf_counter() - started,
        )
    )


def _notify(progress: Optional[ProgressFn], event: ProgressEvent) -> None:
    if progress is not None:
        progress(event)


def _bridge_progress(progress: Optional[ProgressFn]) -> Optional[ProgressFn]:
    """The ProgressEvent→span bridge.

    Every scheduling event also lands on the active tracer as an instant
    span (``progress.start``, ``progress.done``, ...), so the exported
    timeline shows when the engine scheduled what without the CLI printer
    and the trace ever disagreeing.  With no tracer installed this returns
    ``progress`` unchanged.
    """
    if obs.current_tracer() is None:
        return progress

    def bridged(event: ProgressEvent) -> None:
        obs.instant(
            f"progress.{event.kind}",
            experiment=event.experiment_id,
            completed=event.completed,
            total=event.total,
        )
        _notify(progress, event)

    return bridged


def run_experiments(
    ids: Sequence[str],
    config: ExperimentConfig,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
    observe: bool = False,
    counters: bool = False,
) -> list[ExperimentOutcome]:
    """Run ``ids`` under ``config``; returns one outcome per id, in order.

    ``jobs`` caps worker processes (1 = fully in-process).  ``cache``
    short-circuits ids whose fingerprint already has an entry and stores
    fresh successes.  ``progress`` receives a :class:`ProgressEvent` as
    each id starts and finishes (events fire in completion order; the
    *returned list* is always in request order).

    ``observe`` turns on telemetry capture: each experiment (and each of
    its batchable units) runs under a tracer/metrics registry in whatever
    process executes it, the buffers ride back on the outcomes, and — after
    everything finishes — they are merged into the *caller's* active tracer
    and registry strictly in request order of ``ids`` (and unit-index order
    within an experiment), never in completion order.  Telemetry never
    touches RNG streams or rendered tables: observed output is
    byte-identical to unobserved output at any ``jobs`` count.

    ``counters`` does the same for mote hardware-counter telemetry: each
    experiment executes under a fresh isolated
    :class:`~repro.obs.HardwareCounters` registry wherever it runs, the
    snapshot rides back on ``outcome.hw_counters``, and everything folds
    into the caller's active registry in request order.  Counter values are
    seed-determined, so the merged totals are bit-identical at any ``jobs``
    count.  Cached experiments did not execute and contribute nothing.

    Failures never raise: a crashed experiment yields an outcome with
    ``error`` set (including the failing unit index and a truncated
    traceback when available) and the remaining ids still run.
    """
    from repro.experiments import ALL_EXPERIMENTS  # deferred: import cycle

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    unknown = [i for i in ids if i not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment id(s): {', '.join(unknown)}")

    total = len(ids)
    outcomes: dict[str, ExperimentOutcome] = {}
    completed = 0
    progress = _bridge_progress(progress)

    pending: list[str] = []
    for exp_id in ids:
        hit = cache.load(exp_id, config) if cache is not None else None
        if hit is not None:
            completed += 1
            obs.inc("cache.hit")
            outcomes[exp_id] = ExperimentOutcome(
                experiment_id=exp_id, result=hit, cached=True
            )
            _notify(
                progress,
                ProgressEvent("cached", exp_id, completed, total),
            )
        else:
            if cache is not None:
                obs.inc("cache.miss")
            pending.append(exp_id)

    def finish(outcome: ExperimentOutcome) -> None:
        nonlocal completed
        completed += 1
        outcomes[outcome.experiment_id] = outcome
        obs.set_gauge(f"engine.wall_seconds.{outcome.experiment_id}", outcome.seconds)
        obs.observe("engine.experiment_seconds", outcome.seconds)
        if not outcome.ok:
            obs.inc("engine.experiments_failed")
        if outcome.ok and cache is not None:
            try:
                cache.store(outcome.experiment_id, config, outcome.result)
                obs.inc("cache.store")
            except OSError as exc:
                # The cache is an accelerator, not the deliverable: a full
                # disk or unwritable --cache-dir must not discard a result
                # that already finished computing.
                warnings.warn(
                    f"result cache write failed for {outcome.experiment_id!r}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        _notify(
            progress,
            ProgressEvent(
                "failed" if not outcome.ok else "done",
                outcome.experiment_id,
                completed,
                total,
                seconds=outcome.seconds,
                error=outcome.error,
            ),
        )

    if len(pending) == 1 and jobs > 1:
        # One experiment, many cores: fan its batchable units out instead.
        exp_id = pending[0]
        _notify(progress, ProgressEvent("start", exp_id, completed, total))
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            with unit_executor(pool):
                finish(_execute(exp_id, config, observe, counters))
    elif jobs == 1 or len(pending) <= 1:
        for exp_id in pending:
            _notify(progress, ProgressEvent("start", exp_id, completed, total))
            finish(_execute(exp_id, config, observe, counters))
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {}
            for exp_id in pending:
                _notify(progress, ProgressEvent("start", exp_id, completed, total))
                futures[
                    pool.submit(_execute, exp_id, config, observe, counters)
                ] = exp_id
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    finish(future.result())

    ordered = [outcomes[exp_id] for exp_id in ids]
    if observe:
        # Deterministic merge: captured telemetry folds into the caller's
        # tracer/registry in *request* order — the artifact's span order is a
        # function of (experiment id, unit index), never of which worker
        # finished first.
        tracer = obs.current_tracer()
        registry = obs.current_registry()
        for outcome in ordered:
            if tracer is not None and outcome.spans:
                tracer.adopt(outcome.spans, experiment=outcome.experiment_id)
            if registry is not None and outcome.metrics:
                registry.merge_snapshot(outcome.metrics)
    if counters:
        # Same request-order rule for hardware counters: integer sums are
        # commutative, but a fixed order keeps the contract uniform and the
        # artifact layout reproducible.
        hw_parent = hwc.active()
        if hw_parent is not None:
            for outcome in ordered:
                if outcome.hw_counters:
                    hw_parent.merge_snapshot(outcome.hw_counters)
    return ordered
