"""``python -m repro.experiments`` — module entry for the experiment CLI.

Delegates to :func:`repro.experiments.runner.main` (the ``repro-experiments``
console script).  An optional leading ``run`` token is accepted and ignored,
so ``python -m repro.experiments run f8 --jobs 4`` and
``python -m repro.experiments f8 --jobs 4`` are the same invocation.
"""

from __future__ import annotations

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    argv = sys.argv[1:]
    if argv and argv[0] == "run":
        argv = argv[1:]
    sys.exit(main(argv))
