"""F9 — Samples-to-convergence of streaming estimation, per workload.

The streaming estimator's convergence policy (stop once every measured
procedure's Wald CI half-width drops below ``epsilon``, or the sample
budget runs out) turns "how many samples does profiling need?" into a
quantity the profiler can answer **while collecting**.  This experiment
reports the answer per workload: timing shards are absorbed one at a time
and collection stops at the policy's verdict.

The budget axis comes from :class:`~repro.profiling.budget.SampleBudget`,
capped at the pool actually collected — so a workload whose CI never
tightens below ``epsilon`` within the pool terminates with an honest
``converged=no`` row rather than looping forever.  Everything is
deterministic for a seed: EM uses no RNG and the shard sequence is a pure
prefix split of the dataset.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.metrics import program_estimation_error
from repro.core.online import OnlineEstimator, OnlineOptions, dataset_shards
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
    profiled_run,
)
from repro.profiling.budget import SampleBudget
from repro.util.tables import Table
from repro.workloads.registry import workload_by_name

__all__ = ["run", "workload_unit", "EPSILON", "WORKLOADS"]

#: CI half-width at which a procedure's estimate counts as "tight enough".
EPSILON = 0.035

WORKLOADS = ("sense", "event-detect", "oscilloscope", "surge")

_POOL_ACTIVATIONS = 5000
_SHARD_SIZE = 250
_QUICK_POOL = 600
_QUICK_SHARD = 100


def workload_unit(name: str, config: ExperimentConfig) -> UnitResult:
    """Stream one workload until the convergence policy calls the stop."""
    pool = _QUICK_POOL if config.quick else _POOL_ACTIVATIONS
    step = _QUICK_SHARD if config.quick else _SHARD_SIZE
    spec = workload_by_name(name)
    base = ExperimentConfig(
        platform=config.platform,
        activations=pool,
        seed=config.seed,
        quick=False,
        scenario=config.scenario,
    )
    run_data = profiled_run(spec, base)
    total_pool = sum(xs.size for xs in run_data.dataset.samples.values())
    options = OnlineOptions(
        epsilon=EPSILON, budget=SampleBudget(max_total=total_pool)
    )
    estimator = OnlineEstimator(run_data.program, config.platform, options)
    boundaries = tuple(range(step, pool + 1, step))
    point = None
    for shard in dataset_shards(run_data.dataset, boundaries):
        point = estimator.absorb(shard)
        if point.should_stop:
            break
    assert point is not None  # boundaries is never empty
    mae = program_estimation_error(point.thetas, run_data.truth, "mae")
    unit = UnitResult()
    unit.add_row(
        name,
        point.shard_index + 1,
        point.total_samples,
        "yes" if point.converged else "no",
        point.max_half_width,
        mae,
    )
    unit.add_series(
        workload=name,
        shards=point.shard_index + 1,
        samples=point.total_samples,
        converged=point.converged,
        max_half_width=point.max_half_width,
        mae=mae,
    )
    return unit


def run(config: ExperimentConfig) -> ExperimentResult:
    """Report samples-to-convergence for each representative workload."""
    table = Table(
        f"F9: timing samples until CI half-widths < {EPSILON}",
        ["workload", "shards", "samples", "converged", "max_hw", "mae"],
        digits=4,
    )
    series: dict[str, list] = {
        "workload": [],
        "shards": [],
        "samples": [],
        "converged": [],
        "max_half_width": [],
        "mae": [],
    }
    units = map_units(partial(workload_unit, config=config), WORKLOADS)
    timings = combine_units(units, table, series)
    return ExperimentResult(
        experiment_id="f9",
        title="samples to convergence (streaming)",
        tables=[table],
        series=series,
        timings=timings,
        notes=[
            "Collection stops when every measured procedure's Wald CI "
            "half-width is below epsilon, or when the sample budget "
            "(the collected pool) is exhausted — whichever comes first.",
            "converged=no means the pool ran out first; max_hw shows how "
            "far the widest interval still was.",
        ],
    )
