"""T2 — Profiling overhead: full instrumentation vs sampling vs tomography.

The paper's motivation table: what each profiling approach costs on the
mote.  The qualitative shape to reproduce: edge instrumentation pays per
static edge (RAM/ROM) and per dynamic edge (runtime); the tomography
collector pays per procedure and per invocation — far less on branchy code.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
    profiled_run,
)
from repro.profiling import (
    edge_instrumentation_overhead,
    sampling_overhead,
    timing_overhead,
)
from repro.util.tables import Table
from repro.workloads.registry import all_workloads, workload_by_name

__all__ = ["run", "workload_unit", "SAMPLING_INTERVAL_CYCLES"]

SAMPLING_INTERVAL_CYCLES = 4096


def workload_unit(name: str, config: ExperimentConfig) -> UnitResult:
    """Price all three profiling schemes on one workload's reference run."""
    spec = workload_by_name(name)
    unit = UnitResult()
    run_data = profiled_run(spec, config)
    base_cycles = run_data.result.total_cycles
    reports = [
        edge_instrumentation_overhead(run_data.program, run_data.result, config.platform),
        sampling_overhead(
            run_data.program, run_data.result, config.platform, SAMPLING_INTERVAL_CYCLES
        ),
        timing_overhead(run_data.program, run_data.result, config.platform),
    ]
    for report in reports:
        pct = 100.0 * report.runtime_overhead_fraction(base_cycles)
        unit.add_row(
            spec.name,
            report.scheme,
            report.rom_bytes,
            report.ram_bytes,
            pct,
            report.upload_packets,
            report.energy_mj,
        )
        unit.add_series(
            workload=spec.name,
            scheme=report.scheme,
            runtime_pct=pct,
            ram_bytes=report.ram_bytes,
        )
    return unit


def run(config: ExperimentConfig) -> ExperimentResult:
    """Price all three schemes on every workload's reference run."""
    table = Table(
        "T2: profiling overhead per workload",
        ["workload", "scheme", "rom_B", "ram_B", "runtime_%", "packets", "energy_mJ"],
        digits=3,
    )
    series: dict[str, list] = {
        "workload": [],
        "scheme": [],
        "runtime_pct": [],
        "ram_bytes": [],
    }
    units = map_units(
        partial(workload_unit, config=config), [s.name for s in all_workloads()]
    )
    timings = combine_units(units, table, series)
    return ExperimentResult(
        experiment_id="t2",
        title="profiling overhead",
        tables=[table],
        series=series,
        timings=timings,
        notes=[
            "Shape check: code-tomography runtime and RAM overhead must be well "
            "below edge-instrumentation on every workload."
        ],
    )
