"""T2 — Profiling overhead: full instrumentation vs sampling vs tomography.

The paper's motivation table: what each profiling approach costs on the
mote.  The qualitative shape to reproduce: edge instrumentation pays per
static edge (RAM/ROM) and per dynamic edge (runtime); the tomography
collector pays per procedure and per invocation — far less on branchy code.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
    profiled_run,
)
from repro.obs import counters as hwc
from repro.profiling import (
    edge_instrumentation_overhead_from_counts,
    sampling_overhead_from_counts,
    timing_overhead_from_counts,
)
from repro.util.tables import Table
from repro.workloads.registry import all_workloads, workload_by_name

__all__ = ["run", "workload_unit", "SAMPLING_INTERVAL_CYCLES"]

SAMPLING_INTERVAL_CYCLES = 4096


def workload_unit(name: str, config: ExperimentConfig) -> UnitResult:
    """Price all three profiling schemes on one workload's reference run."""
    spec = workload_by_name(name)
    unit = UnitResult()
    # The dynamic quantities each scheme pays for (edges traversed,
    # invocations, total cycles) are read off the hardware counters rather
    # than the simulator's ground-truth bookkeeping: both observers tally
    # the same integer events, so the priced table is bit-identical.
    with hwc.counters_active(hwc.HardwareCounters()) as hw:
        run_data = profiled_run(spec, config)
    snap = hw.snapshot()
    base_cycles = hwc.total_cycles(snap)
    reports = [
        edge_instrumentation_overhead_from_counts(
            run_data.program, hwc.dynamic_edges(snap), config.platform
        ),
        sampling_overhead_from_counts(
            run_data.program, base_cycles, config.platform, SAMPLING_INTERVAL_CYCLES
        ),
        timing_overhead_from_counts(
            run_data.program, hwc.invocations_total(snap), config.platform
        ),
    ]
    for report in reports:
        pct = 100.0 * report.runtime_overhead_fraction(base_cycles)
        unit.add_row(
            spec.name,
            report.scheme,
            report.rom_bytes,
            report.ram_bytes,
            pct,
            report.upload_packets,
            report.energy_mj,
        )
        unit.add_series(
            workload=spec.name,
            scheme=report.scheme,
            runtime_pct=pct,
            ram_bytes=report.ram_bytes,
        )
    return unit


def run(config: ExperimentConfig) -> ExperimentResult:
    """Price all three schemes on every workload's reference run."""
    table = Table(
        "T2: profiling overhead per workload",
        ["workload", "scheme", "rom_B", "ram_B", "runtime_%", "packets", "energy_mJ"],
        digits=3,
    )
    series: dict[str, list] = {
        "workload": [],
        "scheme": [],
        "runtime_pct": [],
        "ram_bytes": [],
    }
    units = map_units(
        partial(workload_unit, config=config), [s.name for s in all_workloads()]
    )
    timings = combine_units(units, table, series)
    return ExperimentResult(
        experiment_id="t2",
        title="profiling overhead",
        tables=[table],
        series=series,
        timings=timings,
        notes=[
            "Shape check: code-tomography runtime and RAM overhead must be well "
            "below edge-instrumentation on every workload."
        ],
    )
