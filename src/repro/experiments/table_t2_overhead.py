"""T2 — Profiling overhead: full instrumentation vs sampling vs tomography.

The paper's motivation table: what each profiling approach costs on the
mote.  The qualitative shape to reproduce: edge instrumentation pays per
static edge (RAM/ROM) and per dynamic edge (runtime); the tomography
collector pays per procedure and per invocation — far less on branchy code.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentConfig, ExperimentResult, profiled_run
from repro.profiling import (
    edge_instrumentation_overhead,
    sampling_overhead,
    timing_overhead,
)
from repro.util.tables import Table
from repro.workloads.registry import all_workloads

__all__ = ["run", "SAMPLING_INTERVAL_CYCLES"]

SAMPLING_INTERVAL_CYCLES = 4096


def run(config: ExperimentConfig) -> ExperimentResult:
    """Price all three schemes on every workload's reference run."""
    table = Table(
        "T2: profiling overhead per workload",
        ["workload", "scheme", "rom_B", "ram_B", "runtime_%", "packets", "energy_mJ"],
        digits=3,
    )
    series: dict[str, list] = {
        "workload": [],
        "scheme": [],
        "runtime_pct": [],
        "ram_bytes": [],
    }
    for spec in all_workloads():
        run_data = profiled_run(spec, config)
        base_cycles = run_data.result.total_cycles
        reports = [
            edge_instrumentation_overhead(run_data.program, run_data.result, config.platform),
            sampling_overhead(
                run_data.program, run_data.result, config.platform, SAMPLING_INTERVAL_CYCLES
            ),
            timing_overhead(run_data.program, run_data.result, config.platform),
        ]
        for report in reports:
            pct = 100.0 * report.runtime_overhead_fraction(base_cycles)
            table.add_row(
                spec.name,
                report.scheme,
                report.rom_bytes,
                report.ram_bytes,
                pct,
                report.upload_packets,
                report.energy_mj,
            )
            series["workload"].append(spec.name)
            series["scheme"].append(report.scheme)
            series["runtime_pct"].append(pct)
            series["ram_bytes"].append(report.ram_bytes)
    return ExperimentResult(
        experiment_id="t2",
        title="profiling overhead",
        tables=[table],
        series=series,
        notes=[
            "Shape check: code-tomography runtime and RAM overhead must be well "
            "below edge-instrumentation on every workload."
        ],
    )
