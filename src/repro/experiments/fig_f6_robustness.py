"""F6 — Robustness to input-model mismatch.

The Markov execution model assumes branch outcomes behave like fixed
probabilities.  Real sensor inputs are correlated, bursty, and drifting —
this figure runs the same workloads under those regimes and reports both the
estimation error and whether tomography-guided placement still helps (the
end-to-end quantity a user cares about).
"""

from __future__ import annotations

from functools import partial

from repro.analysis.metrics import program_estimation_error
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
    profiled_run,
    tomography_thetas,
)
from repro.placement import optimize_program_layout
from repro.sim import run_program
from repro.util.tables import Table
from repro.workloads.registry import workload_by_name

__all__ = ["run", "pair_unit", "SCENARIOS", "WORKLOADS"]

SCENARIOS = ("default", "bursty", "drifting", "correlated")
WORKLOADS = ("sense", "event-detect")


def pair_unit(pair: tuple[str, str], config: ExperimentConfig) -> UnitResult:
    """One (workload, scenario) pair: estimate, place, evaluate."""
    name, scenario = pair
    spec = workload_by_name(name)
    scenario_config = ExperimentConfig(
        platform=config.platform,
        activations=config.activations,
        seed=config.seed,
        quick=config.quick,
        scenario=scenario,
    )
    run_data = profiled_run(spec, scenario_config)
    thetas = tomography_thetas(run_data, scenario_config)
    mae = program_estimation_error(thetas, run_data.truth, "mae")

    layout = optimize_program_layout(run_data.program, thetas)
    rates = {}
    for label, lay in (("source", None), ("tomo", layout)):
        sensors = spec.sensors(scenario=scenario, rng=config.seed + 1000)
        result = run_program(
            run_data.program,
            scenario_config.platform,
            sensors,
            activations=scenario_config.effective_activations,
            layout=lay,
        )
        rates[label] = result.counters.mispredict_rate
    unit = UnitResult()
    unit.add_row(name, scenario, mae, rates["source"], rates["tomo"])
    unit.add_series(
        workload=name,
        scenario=scenario,
        mae=mae,
        improvement=rates["source"] - rates["tomo"],
    )
    return unit


def run(config: ExperimentConfig) -> ExperimentResult:
    """Estimation error and placement benefit under each input regime."""
    table = Table(
        "F6: robustness to input-model mismatch",
        ["workload", "scenario", "mae", "mispredict_source", "mispredict_tomo"],
        digits=4,
    )
    series: dict[str, list] = {
        "workload": [],
        "scenario": [],
        "mae": [],
        "improvement": [],
    }
    pairs = [(name, scenario) for name in WORKLOADS for scenario in SCENARIOS]
    units = map_units(partial(pair_unit, config=config), pairs)
    timings = combine_units(units, table, series)
    return ExperimentResult(
        experiment_id="f6",
        title="robustness to input mismatch",
        tables=[table],
        series=series,
        timings=timings,
        notes=[
            "Shape check: error grows under correlated/bursty inputs but the "
            "placement guided by the (time-averaged) estimate still reduces "
            "mispredictions versus source order."
        ],
    )
