"""T3 — Estimator ablation: moments(1/2/3), EM, hybrid.

The design-choice table called out in DESIGN.md: how much each ingredient
buys.  Sweeps the number of matched moments for the least-squares estimator
and compares against path-family EM and the hybrid, on synthetic procedures
with known parameters (fast, interpreter-free) plus one real workload.

Fit wall-clock seconds are recorded per variant in the result's ``timings``
(``fit:<suite>:<variant>``) rather than in the rendered table, so the table
itself is deterministic for a fixed seed; the CLI surfaces timings via
``--progress``/``--json``.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.analysis.metrics import mean_abs_error, program_estimation_error
from repro.core import CodeTomography, EMEstimator, EstimationOptions, fit_moments
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
    profiled_run,
    stage,
    tomography_thetas,
)
from repro.markov.sampling import sample_rewards
from repro.placement.layout import Layout
from repro.sim.timing import ProcedureTimingModel
from repro.util.rng import spawn_rngs
from repro.util.tables import Table
from repro.workloads.registry import workload_by_name
from repro.workloads.synthetic import random_estimation_problem

__all__ = ["run", "suite_unit", "VARIANTS", "SUITES"]

VARIANTS = ("moments-1", "moments-2", "moments-3", "em", "hybrid")
SUITES = ("synthetic", "sense")


def _synthetic_unit(config: ExperimentConfig) -> UnitResult:
    """Per-variant MAE over random synthetic procedures."""
    n_problems = 3 if config.quick else 8
    n_samples = 400 if config.quick else 1500
    rngs = spawn_rngs(config.seed, n_problems * 2)
    errors: dict[str, list[float]] = {v: [] for v in VARIANTS}
    unit = UnitResult()

    for i in range(n_problems):
        procedure, truth = random_estimation_problem(
            rng=rngs[2 * i], n_branches=int(2 + i % 3)
        )
        model = ProcedureTimingModel(
            procedure, config.platform, Layout.source_order(procedure.cfg)
        )
        chain = model.chain(truth)
        exact = sample_rewards(chain, n_samples, rng=rngs[2 * i + 1])
        timer = config.platform.timer
        measured = np.array(
            [timer.measure_cycles(0.0, d, rngs[2 * i + 1]) for d in exact]
        )
        for variant in VARIANTS:
            with stage(unit.timings, f"fit:synthetic:{variant}"):
                if variant.startswith("moments"):
                    k = int(variant.split("-")[1])
                    theta = fit_moments(
                        model, measured, timer=timer, moments_used=k, rng=config.seed
                    ).theta
                else:
                    theta0 = None
                    if variant == "hybrid":
                        theta0 = fit_moments(
                            model, measured, timer=timer, rng=config.seed
                        ).theta
                    theta = (
                        EMEstimator(model, timer=timer).fit(measured, theta0=theta0).theta
                    )
            errors[variant].append(mean_abs_error(theta, truth))

    for variant in VARIANTS:
        mae = float(np.mean(errors[variant]))
        unit.add_row("synthetic", variant, mae)
        unit.add_series(suite="synthetic", variant=variant, mae=mae)
    return unit


def _sense_unit(config: ExperimentConfig) -> UnitResult:
    """Per-variant MAE on the real ``sense`` workload."""
    spec = workload_by_name("sense")
    run_data = profiled_run(spec, config)
    unit = UnitResult()
    for variant in VARIANTS:
        with stage(unit.timings, f"fit:sense:{variant}"):
            if variant.startswith("moments"):
                opts = EstimationOptions(
                    method="moments",
                    moments_used=int(variant.split("-")[1]),
                    seed=config.seed,
                )
                thetas = CodeTomography(run_data.program, config.platform).estimate(
                    run_data.dataset, opts
                ).thetas
            else:
                thetas = tomography_thetas(run_data, config, method=variant)
        mae = program_estimation_error(thetas, run_data.truth, "mae")
        unit.add_row("sense", variant, mae)
        unit.add_series(suite="sense", variant=variant, mae=mae)
    return unit


def suite_unit(suite: str, config: ExperimentConfig) -> UnitResult:
    """One batchable unit per ablation suite."""
    if suite == "synthetic":
        return _synthetic_unit(config)
    if suite == "sense":
        return _sense_unit(config)
    raise ValueError(f"unknown T3 suite {suite!r}; known: {SUITES}")


def run(config: ExperimentConfig) -> ExperimentResult:
    """Ablate the estimator variants on synthetic problems + one workload."""
    table = Table(
        "T3: estimator ablation",
        ["suite", "variant", "mae"],
        digits=4,
    )
    series: dict[str, list] = {"suite": [], "variant": [], "mae": []}
    units = map_units(partial(suite_unit, config=config), SUITES)
    timings = combine_units(units, table, series)
    return ExperimentResult(
        experiment_id="t3",
        title="estimator ablation",
        tables=[table],
        series=series,
        timings=timings,
        notes=[
            "Shape check: adding variance (moments-2) over mean-only "
            "(moments-1) must help on multi-branch procedures; moments-3 and "
            "EM refine further where the timer permits.",
            "Per-variant fit seconds are in the run's timing report "
            "(fit:<suite>:<variant>), not in the table.",
        ],
    )
