"""T3 — Estimator ablation: moments(1/2/3), EM, hybrid.

The design-choice table called out in DESIGN.md: how much each ingredient
buys.  Sweeps the number of matched moments for the least-squares estimator
and compares against path-family EM and the hybrid, on synthetic procedures
with known parameters (fast, interpreter-free) plus one real workload.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.metrics import mean_abs_error, program_estimation_error
from repro.core import CodeTomography, EMEstimator, EstimationOptions, fit_moments
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    profiled_run,
    tomography_thetas,
)
from repro.markov.sampling import sample_rewards
from repro.placement.layout import Layout
from repro.sim.timing import ProcedureTimingModel
from repro.util.rng import spawn_rngs
from repro.util.tables import Table
from repro.workloads.registry import workload_by_name
from repro.workloads.synthetic import random_estimation_problem

__all__ = ["run", "VARIANTS"]

VARIANTS = ("moments-1", "moments-2", "moments-3", "em", "hybrid")


def _synthetic_errors(config: ExperimentConfig) -> dict[str, tuple[float, float]]:
    """Per-variant (MAE, fit seconds) over random synthetic procedures."""
    n_problems = 3 if config.quick else 8
    n_samples = 400 if config.quick else 1500
    rngs = spawn_rngs(config.seed, n_problems * 2)
    errors: dict[str, list[float]] = {v: [] for v in VARIANTS}
    seconds: dict[str, float] = {v: 0.0 for v in VARIANTS}

    for i in range(n_problems):
        procedure, truth = random_estimation_problem(
            rng=rngs[2 * i], n_branches=int(2 + i % 3)
        )
        model = ProcedureTimingModel(
            procedure, config.platform, Layout.source_order(procedure.cfg)
        )
        chain = model.chain(truth)
        exact = sample_rewards(chain, n_samples, rng=rngs[2 * i + 1])
        timer = config.platform.timer
        measured = np.array(
            [timer.measure_cycles(0.0, d, rngs[2 * i + 1]) for d in exact]
        )
        for variant in VARIANTS:
            start = time.perf_counter()
            if variant.startswith("moments"):
                k = int(variant.split("-")[1])
                theta = fit_moments(
                    model, measured, timer=timer, moments_used=k, rng=config.seed
                ).theta
            else:
                theta0 = None
                if variant == "hybrid":
                    theta0 = fit_moments(
                        model, measured, timer=timer, rng=config.seed
                    ).theta
                theta = EMEstimator(model, timer=timer).fit(measured, theta0=theta0).theta
            seconds[variant] += time.perf_counter() - start
            errors[variant].append(mean_abs_error(theta, truth))
    return {
        v: (float(np.mean(errors[v])), seconds[v] / n_problems) for v in VARIANTS
    }


def run(config: ExperimentConfig) -> ExperimentResult:
    """Ablate the estimator variants on synthetic problems + one workload."""
    table = Table(
        "T3: estimator ablation",
        ["suite", "variant", "mae", "fit_s"],
        digits=4,
    )
    series: dict[str, list] = {"suite": [], "variant": [], "mae": []}

    synth = _synthetic_errors(config)
    for variant in VARIANTS:
        mae, secs = synth[variant]
        table.add_row("synthetic", variant, mae, secs)
        series["suite"].append("synthetic")
        series["variant"].append(variant)
        series["mae"].append(mae)

    spec = workload_by_name("sense")
    run_data = profiled_run(spec, config)
    for variant in VARIANTS:
        start = time.perf_counter()
        if variant.startswith("moments"):
            opts = EstimationOptions(
                method="moments", moments_used=int(variant.split("-")[1]), seed=config.seed
            )
            thetas = CodeTomography(run_data.program, config.platform).estimate(
                run_data.dataset, opts
            ).thetas
        else:
            thetas = tomography_thetas(run_data, config, method=variant)
        secs = time.perf_counter() - start
        mae = program_estimation_error(thetas, run_data.truth, "mae")
        table.add_row("sense", variant, mae, secs)
        series["suite"].append("sense")
        series["variant"].append(variant)
        series["mae"].append(mae)
    return ExperimentResult(
        experiment_id="t3",
        title="estimator ablation",
        tables=[table],
        series=series,
        notes=[
            "Shape check: adding variance (moments-2) over mean-only "
            "(moments-1) must help on multi-branch procedures; moments-3 and "
            "EM refine further where the timer permits."
        ],
    )
