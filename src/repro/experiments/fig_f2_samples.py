"""F2 — Estimation accuracy versus number of timing samples.

How many end-to-end measurements does tomography need?  The figure sweeps
the per-procedure sample budget and reports pooled MAE per point; the
expected shape is monotone improvement at roughly the Monte-Carlo 1/sqrt(n)
rate until timer quantization floors it.

Since the streaming estimator landed, each workload produces **one
trajectory**: the long run's dataset is split into per-procedure prefix
shards at the sample budgets and absorbed incrementally by
:class:`~repro.core.online.OnlineEstimator`, which warm-starts EM and
reuses path families between points instead of re-fitting cold per size.
Every point therefore sees the same observation stream its predecessors
saw — exactly the prefix property the old subsample loop approximated with
repetitions — so the sweep needs no repetitions and is deterministic for a
seed.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.metrics import program_estimation_error
from repro.core.online import OnlineEstimator, OnlineOptions, dataset_shards
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
    profiled_run,
)
from repro.util.tables import Table
from repro.workloads.registry import workload_by_name

__all__ = ["run", "workload_unit", "SAMPLE_COUNTS", "WORKLOADS"]

SAMPLE_COUNTS = (50, 100, 200, 500, 1000, 2000, 5000)
WORKLOADS = ("sense", "event-detect", "oscilloscope")


def workload_unit(name: str, config: ExperimentConfig) -> UnitResult:
    """Stream the sample-budget sweep on one workload (one batchable unit)."""
    counts = SAMPLE_COUNTS[:4] if config.quick else SAMPLE_COUNTS
    spec = workload_by_name(name)
    # One long run provides the pool; the budgets become prefix-shard
    # boundaries so every point extends the previous point's data.
    base = ExperimentConfig(
        platform=config.platform,
        activations=max(counts),
        seed=config.seed,
        quick=False,
        scenario=config.scenario,
    )
    run_data = profiled_run(spec, base)
    estimator = OnlineEstimator(
        run_data.program, config.platform, OnlineOptions(epsilon=None)
    )
    unit = UnitResult()
    for point in map(estimator.absorb, dataset_shards(run_data.dataset, counts)):
        mae = program_estimation_error(point.thetas, run_data.truth, "mae")
        budget = counts[point.shard_index]
        unit.add_row(name, budget, mae)
        unit.add_series(workload=name, samples=budget, mae=mae)
    return unit


def run(config: ExperimentConfig) -> ExperimentResult:
    """Sweep the sample budget on three representative workloads."""
    table = Table(
        "F2: estimation error vs timing-sample budget",
        ["workload", "samples", "mae"],
        digits=4,
    )
    series: dict[str, list] = {"workload": [], "samples": [], "mae": []}
    units = map_units(partial(workload_unit, config=config), WORKLOADS)
    timings = combine_units(units, table, series)
    return ExperimentResult(
        experiment_id="f2",
        title="accuracy vs sample count",
        tables=[table],
        series=series,
        timings=timings,
        notes=[
            "Shape check: MAE decreases (roughly ~1/sqrt(n)) as the timing "
            "sample budget grows.",
            "Each workload is one streaming trajectory (warm-started "
            "incremental EM over prefix shards), not per-size cold refits.",
        ],
    )
