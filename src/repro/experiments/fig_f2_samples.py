"""F2 — Estimation accuracy versus number of timing samples.

How many end-to-end measurements does tomography need?  The figure sweeps
the per-procedure sample budget and reports pooled MAE per point; the
expected shape is monotone improvement at roughly the Monte-Carlo 1/sqrt(n)
rate until timer quantization floors it.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.analysis.metrics import program_estimation_error
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
    profiled_run,
    tomography_thetas,
)
from repro.util.tables import Table
from repro.workloads.registry import workload_by_name

__all__ = ["run", "workload_unit", "SAMPLE_COUNTS", "WORKLOADS"]

SAMPLE_COUNTS = (50, 100, 200, 500, 1000, 2000, 5000)
WORKLOADS = ("sense", "event-detect", "oscilloscope")


def workload_unit(name: str, config: ExperimentConfig) -> UnitResult:
    """Sweep the sample budget on one workload (one batchable unit)."""
    counts = SAMPLE_COUNTS[:4] if config.quick else SAMPLE_COUNTS
    max_needed = max(counts)
    spec = workload_by_name(name)
    # One long run provides the pool; budgets subsample it so every
    # point sees the same ground truth.
    base = ExperimentConfig(
        platform=config.platform,
        activations=max_needed,
        seed=config.seed,
        quick=False,
        scenario=config.scenario,
    )
    run_data = profiled_run(spec, base)
    repetitions = 1 if config.quick else 3
    unit = UnitResult()
    for n in counts:
        maes = []
        for rep in range(repetitions):
            subset = run_data.dataset.subsample(n, rng=config.seed + n + 7919 * rep)
            run_like = type(run_data)(
                spec=run_data.spec,
                program=run_data.program,
                result=run_data.result,
                dataset=subset,
                truth=run_data.truth,
            )
            thetas = tomography_thetas(run_like, config, method="moments")
            maes.append(program_estimation_error(thetas, run_data.truth, "mae"))
        mae = float(np.mean(maes))
        unit.add_row(name, n, mae)
        unit.add_series(workload=name, samples=n, mae=mae)
    return unit


def run(config: ExperimentConfig) -> ExperimentResult:
    """Sweep the sample budget on three representative workloads."""
    table = Table(
        "F2: estimation error vs timing-sample budget",
        ["workload", "samples", "mae"],
        digits=4,
    )
    series: dict[str, list] = {"workload": [], "samples": [], "mae": []}
    units = map_units(partial(workload_unit, config=config), WORKLOADS)
    timings = combine_units(units, table, series)
    return ExperimentResult(
        experiment_id="f2",
        title="accuracy vs sample count",
        tables=[table],
        series=series,
        timings=timings,
        notes=[
            "Shape check: MAE decreases (roughly ~1/sqrt(n)) as the timing "
            "sample budget grows."
        ],
    )
