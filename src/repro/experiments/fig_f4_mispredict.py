"""F4 — Branch misprediction rate by placement strategy.

The paper's payoff figure: feed the estimated profile back into code
placement and measure dynamic misprediction rates.  Four strategies per
workload — source order (no profile), random, tomography-guided, and
oracle-guided (exact instrumented profile) — under two static prediction
schemes.  Evaluation runs use *fresh* sensor randomness, so a profile must
generalize, not memorize.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
    profiled_run,
    tomography_thetas,
)
from repro.mote.predictor import AlwaysNotTakenPredictor, BTFNPredictor
from repro.obs import counters as hwc
from repro.placement import optimize_program_layout, random_program_layout
from repro.sim import run_program_batched
from repro.util.tables import Table
from repro.workloads.inputs import build_sensors
from repro.workloads.registry import all_workloads, workload_by_name

__all__ = ["run", "pair_unit", "STRATEGIES", "PREDICTOR_KEYS"]

STRATEGIES = ("source-order", "random", "tomography", "oracle")

# Keyed by a picklable string so units can rebuild the predictor in a worker.
_PREDICTORS = {"btfn": BTFNPredictor, "always-not-taken": AlwaysNotTakenPredictor}
PREDICTOR_KEYS = ("btfn", "always-not-taken")


def pair_unit(pair: tuple[str, str], config: ExperimentConfig) -> UnitResult:
    """One (predictor, workload) pair: profile, place, evaluate all strategies."""
    predictor_key, workload = pair
    predictor = _PREDICTORS[predictor_key]()
    spec = workload_by_name(workload)
    predictor_config = ExperimentConfig(
        platform=config.platform.with_predictor(predictor),
        activations=config.activations,
        seed=config.seed,
        quick=config.quick,
        scenario=config.scenario,
    )
    profile_data = profiled_run(spec, predictor_config)
    tomo_thetas = tomography_thetas(profile_data, predictor_config)
    layouts = {
        "source-order": None,
        "random": random_program_layout(profile_data.program, rng=config.seed),
        "tomography": optimize_program_layout(profile_data.program, tomo_thetas),
        "oracle": optimize_program_layout(profile_data.program, profile_data.truth),
    }
    unit = UnitResult()
    factory = partial(build_sensors, dict(spec.channels), config.scenario)
    for strategy in STRATEGIES:
        # The evaluation reads its rates off the hardware counters — the
        # same registers a deployed mote would report — rather than the
        # simulator's ground-truth bookkeeping.  A per-strategy registry
        # takes a clean delta; counts still fold into any ambient registry
        # (e.g. the CLI's --counters aggregate) on exit.  Evaluation is a
        # fleet, not a single mote: batched over fresh input streams, it
        # rides the vectorized engine wherever the program is eligible
        # (REPRO_SIM_ENGINE forces either engine; results are bit-identical
        # both ways).
        with hwc.counters_active(hwc.HardwareCounters()) as hw:
            run_program_batched(
                profile_data.program,
                predictor_config.platform,
                factory,
                activations=predictor_config.effective_activations,
                batch_size=8,
                rng=config.seed + 1000,  # fresh inputs
                layout=layouts[strategy],
            )
        snap = hw.snapshot()
        rate = hwc.mispredict_rate(snap)
        unit.add_row(
            spec.name, predictor.name, strategy, rate, hwc.taken_rate(snap)
        )
        unit.add_series(
            workload=spec.name,
            predictor=predictor.name,
            strategy=strategy,
            mispredict_rate=rate,
        )
    return unit


def run(config: ExperimentConfig) -> ExperimentResult:
    """Measure dynamic misprediction rates for every strategy x predictor."""
    table = Table(
        "F4: branch misprediction rate by placement strategy",
        ["workload", "predictor", "strategy", "mispredict_rate", "taken_rate"],
        digits=4,
    )
    series: dict[str, list] = {
        "workload": [],
        "predictor": [],
        "strategy": [],
        "mispredict_rate": [],
    }
    pairs = [
        (key, spec.name) for key in PREDICTOR_KEYS for spec in all_workloads()
    ]
    units = map_units(partial(pair_unit, config=config), pairs)
    timings = combine_units(units, table, series)
    return ExperimentResult(
        experiment_id="f4",
        title="misprediction rate by placement strategy",
        tables=[table],
        series=series,
        timings=timings,
        notes=[
            "Shape check: tomography-guided placement tracks oracle-guided "
            "closely and beats source order on aggregate."
        ],
    )
