"""Experiment harness: one module per reconstructed table/figure.

See DESIGN.md's per-experiment index.  Each module exposes
``run(config: ExperimentConfig) -> ExperimentResult``; the CLI
(:mod:`repro.experiments.runner`, installed as ``repro-experiments``) runs
any subset and prints the tables.  ``ExperimentConfig(quick=True)`` shrinks
sample counts so the whole suite finishes in seconds (used by tests);
benchmarks run the full configuration.
"""

from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments import (
    fig_f1_accuracy,
    fig_f2_samples,
    fig_f3_resolution,
    fig_f4_mispredict,
    fig_f5_speedup,
    fig_f6_robustness,
    fig_f7_drift,
    fig_f8_faults,
    fig_f9_convergence,
    fig_f10_closed_loop,
    table_t1_benchmarks,
    table_t2_overhead,
    table_t3_estimators,
)

ALL_EXPERIMENTS = {
    "t1": table_t1_benchmarks.run,
    "t2": table_t2_overhead.run,
    "t3": table_t3_estimators.run,
    "f1": fig_f1_accuracy.run,
    "f2": fig_f2_samples.run,
    "f3": fig_f3_resolution.run,
    "f4": fig_f4_mispredict.run,
    "f5": fig_f5_speedup.run,
    "f6": fig_f6_robustness.run,
    "f7": fig_f7_drift.run,
    "f8": fig_f8_faults.run,
    "f9": fig_f9_convergence.run,
    "f10": fig_f10_closed_loop.run,
}

# Imported after ALL_EXPERIMENTS exists: the engine resolves experiment
# functions through this mapping (lazily, to keep the import DAG acyclic).
from repro.experiments.engine import (  # noqa: E402
    ExperimentOutcome,
    ResultCache,
    run_experiments,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentOutcome",
    "ResultCache",
    "run_experiments",
    "ALL_EXPERIMENTS",
]
