"""F3 — Estimation accuracy versus timestamp-timer resolution.

Tomography's only instrument is the timer, so its granularity bounds what
the estimator can see.  The sweep runs the same workloads with timers from
an ideal cycle counter (1 cycle/tick) to far coarser than a 32 kHz crystal
(1024 cycles/tick), plus a jittered variant of the realistic setting.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.metrics import program_estimation_error
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
    profiled_run,
    tomography_thetas,
)
from repro.mote.timer import TimestampTimer
from repro.util.tables import Table
from repro.workloads.registry import workload_by_name

__all__ = ["run", "workload_unit", "TICK_SWEEP", "WORKLOADS"]

TICK_SWEEP = (1, 8, 32, 64, 128, 225, 512, 1024)
WORKLOADS = ("sense", "event-detect")
_JITTER_CYCLES = 20.0


def _one_point(name: str, timer: TimestampTimer, config: ExperimentConfig) -> float:
    spec = workload_by_name(name)
    point_config = ExperimentConfig(
        platform=config.platform.with_timer(timer),
        activations=config.activations,
        seed=config.seed,
        quick=config.quick,
        scenario=config.scenario,
    )
    run_data = profiled_run(spec, point_config)
    thetas = tomography_thetas(run_data, point_config, method="moments")
    return program_estimation_error(thetas, run_data.truth, "mae")


def workload_unit(name: str, config: ExperimentConfig) -> UnitResult:
    """Sweep timer resolutions (plus one jittered point) on one workload."""
    ticks = TICK_SWEEP[::2] if config.quick else TICK_SWEEP
    unit = UnitResult()
    for cpt in ticks:
        mae = _one_point(name, TimestampTimer(cycles_per_tick=cpt), config)
        unit.add_row(name, cpt, 0.0, mae)
        unit.add_series(workload=name, cycles_per_tick=cpt, jitter=0.0, mae=mae)
    # One realistic-jitter point at the 32 kHz-class resolution.
    mae = _one_point(
        name, TimestampTimer(cycles_per_tick=225, jitter_cycles=_JITTER_CYCLES), config
    )
    unit.add_row(name, 225, _JITTER_CYCLES, mae)
    unit.add_series(
        workload=name, cycles_per_tick=225, jitter=_JITTER_CYCLES, mae=mae
    )
    return unit


def run(config: ExperimentConfig) -> ExperimentResult:
    """Sweep cycles-per-tick (and one jittered point) on two workloads."""
    table = Table(
        "F3: estimation error vs timer resolution",
        ["workload", "cycles_per_tick", "jitter_cyc", "mae"],
        digits=4,
    )
    series: dict[str, list] = {
        "workload": [],
        "cycles_per_tick": [],
        "jitter": [],
        "mae": [],
    }
    units = map_units(partial(workload_unit, config=config), WORKLOADS)
    timings = combine_units(units, table, series)
    return ExperimentResult(
        experiment_id="f3",
        title="accuracy vs timer resolution",
        tables=[table],
        series=series,
        timings=timings,
        notes=[
            "Shape check: error grows with coarser ticks but remains usable "
            "at the 32 kHz-class (225 cycles/tick) setting."
        ],
    )
