"""F3 — Estimation accuracy versus timestamp-timer resolution.

Tomography's only instrument is the timer, so its granularity bounds what
the estimator can see.  The sweep runs the same workloads with timers from
an ideal cycle counter (1 cycle/tick) to far coarser than a 32 kHz crystal
(1024 cycles/tick), plus a jittered variant of the realistic setting.
"""

from __future__ import annotations

from repro.analysis.metrics import program_estimation_error
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    profiled_run,
    tomography_thetas,
)
from repro.mote.timer import TimestampTimer
from repro.util.tables import Table
from repro.workloads.registry import workload_by_name

__all__ = ["run", "TICK_SWEEP", "WORKLOADS"]

TICK_SWEEP = (1, 8, 32, 64, 128, 225, 512, 1024)
WORKLOADS = ("sense", "event-detect")
_JITTER_CYCLES = 20.0


def run(config: ExperimentConfig) -> ExperimentResult:
    """Sweep cycles-per-tick (and one jittered point) on two workloads."""
    ticks = TICK_SWEEP[::2] if config.quick else TICK_SWEEP
    table = Table(
        "F3: estimation error vs timer resolution",
        ["workload", "cycles_per_tick", "jitter_cyc", "mae"],
        digits=4,
    )
    series: dict[str, list] = {
        "workload": [],
        "cycles_per_tick": [],
        "jitter": [],
        "mae": [],
    }

    def one_point(name: str, timer: TimestampTimer) -> float:
        spec = workload_by_name(name)
        point_config = ExperimentConfig(
            platform=config.platform.with_timer(timer),
            activations=config.activations,
            seed=config.seed,
            quick=config.quick,
            scenario=config.scenario,
        )
        run_data = profiled_run(spec, point_config)
        thetas = tomography_thetas(run_data, point_config, method="moments")
        return program_estimation_error(thetas, run_data.truth, "mae")

    for name in WORKLOADS:
        for cpt in ticks:
            mae = one_point(name, TimestampTimer(cycles_per_tick=cpt))
            table.add_row(name, cpt, 0.0, mae)
            series["workload"].append(name)
            series["cycles_per_tick"].append(cpt)
            series["jitter"].append(0.0)
            series["mae"].append(mae)
        # One realistic-jitter point at the 32 kHz-class resolution.
        mae = one_point(
            name, TimestampTimer(cycles_per_tick=225, jitter_cycles=_JITTER_CYCLES)
        )
        table.add_row(name, 225, _JITTER_CYCLES, mae)
        series["workload"].append(name)
        series["cycles_per_tick"].append(225)
        series["jitter"].append(_JITTER_CYCLES)
        series["mae"].append(mae)
    return ExperimentResult(
        experiment_id="f3",
        title="accuracy vs timer resolution",
        tables=[table],
        series=series,
        notes=[
            "Shape check: error grows with coarser ticks but remains usable "
            "at the 32 kHz-class (225 cycles/tick) setting."
        ],
    )
