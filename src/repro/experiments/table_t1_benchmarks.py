"""T1 — Benchmark characteristics.

The standard "Table 1" of an ISPASS-style evaluation: static structure and
memory footprint of each workload, establishing that the suite spans the
interesting shapes (loops, calls, skewed branches) while fitting mote
budgets.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.util.tables import Table
from repro.workloads.registry import all_workloads

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Tabulate every workload's static census and memory footprint."""
    table = Table(
        "T1: benchmark characteristics",
        ["workload", "procs", "blocks", "branches", "loops", "calls", "rom_B", "ram_B"],
    )
    series: dict[str, list] = {"workload": [], "branches": []}
    memory = config.platform.memory
    for spec in all_workloads():
        program = spec.program()
        totals = program.totals()
        rom = memory.program_rom(program)
        ram = memory.program_ram(program)
        table.add_row(
            spec.name,
            totals["procedures"],
            totals["blocks"],
            totals["branches"],
            totals["loops"],
            totals["calls"],
            rom,
            ram,
        )
        series["workload"].append(spec.name)
        series["branches"].append(totals["branches"])
    return ExperimentResult(
        experiment_id="t1",
        title="benchmark characteristics",
        tables=[table],
        series=series,
        notes=[
            "All workloads fit the micaz-like 128 KiB flash / 4 KiB RAM budget "
            "with three orders of magnitude to spare."
        ],
    )
