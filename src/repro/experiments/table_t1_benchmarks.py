"""T1 — Benchmark characteristics.

The standard "Table 1" of an ISPASS-style evaluation: static structure and
memory footprint of each workload, establishing that the suite spans the
interesting shapes (loops, calls, skewed branches) while fitting mote
budgets.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    UnitResult,
    combine_units,
    map_units,
)
from repro.util.tables import Table
from repro.workloads.registry import all_workloads, workload_by_name

__all__ = ["run", "workload_unit"]


def workload_unit(name: str, config: ExperimentConfig) -> UnitResult:
    """Static census + memory footprint of one workload (one batchable unit)."""
    spec = workload_by_name(name)
    memory = config.platform.memory
    program = spec.program()
    totals = program.totals()
    unit = UnitResult()
    unit.add_row(
        spec.name,
        totals["procedures"],
        totals["blocks"],
        totals["branches"],
        totals["loops"],
        totals["calls"],
        memory.program_rom(program),
        memory.program_ram(program),
    )
    unit.add_series(workload=spec.name, branches=totals["branches"])
    return unit


def run(config: ExperimentConfig) -> ExperimentResult:
    """Tabulate every workload's static census and memory footprint."""
    table = Table(
        "T1: benchmark characteristics",
        ["workload", "procs", "blocks", "branches", "loops", "calls", "rom_B", "ram_B"],
    )
    series: dict[str, list] = {"workload": [], "branches": []}
    units = map_units(
        partial(workload_unit, config=config), [s.name for s in all_workloads()]
    )
    timings = combine_units(units, table, series)
    return ExperimentResult(
        experiment_id="t1",
        title="benchmark characteristics",
        tables=[table],
        series=series,
        timings=timings,
        notes=[
            "All workloads fit the micaz-like 128 KiB flash / 4 KiB RAM budget "
            "with three orders of magnitude to spare."
        ],
    )
