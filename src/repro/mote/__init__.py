"""Sensor-mote hardware model.

The original evaluation ran on TelosB/MicaZ-class motes; this package is the
simulated stand-in (see DESIGN.md, "Hardware / data substitutions").  It
models exactly the properties the technique depends on:

* an in-order MCU with deterministic per-instruction cycle costs and a
  *static* branch scheme whose penalty depends on code layout
  (:mod:`repro.mote.cpu`, :mod:`repro.mote.predictor`);
* a low-resolution timestamp timer with quantization and jitter
  (:mod:`repro.mote.timer`) — the only measurement tomography gets;
* flash/RAM budgets (:mod:`repro.mote.memory`) and an energy model
  (:mod:`repro.mote.energy`) for the overhead comparison;
* nondeterministic sensors (:mod:`repro.mote.sensors`), a radio
  (:mod:`repro.mote.radio`), and a TinyOS-like task scheduler
  (:mod:`repro.mote.scheduler`).
"""

from repro.mote.predictor import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BTFNPredictor,
    StaticPredictor,
    predictor_by_name,
)
from repro.mote.cpu import BranchTiming, CpuModel
from repro.mote.timer import TimestampTimer
from repro.mote.energy import EnergyModel
from repro.mote.memory import MemoryMap
from repro.mote.sensors import (
    AR1Sensor,
    BurstySensor,
    ConstantSensor,
    DiurnalSensor,
    IIDSensor,
    Sensor,
    SensorSuite,
    UniformSensor,
)
from repro.mote.radio import Radio
from repro.mote.scheduler import Scheduler, Task
from repro.mote.platform import MICAZ_LIKE, TELOSB_LIKE, Platform

__all__ = [
    "StaticPredictor",
    "AlwaysNotTakenPredictor",
    "AlwaysTakenPredictor",
    "BTFNPredictor",
    "predictor_by_name",
    "BranchTiming",
    "CpuModel",
    "TimestampTimer",
    "EnergyModel",
    "MemoryMap",
    "Sensor",
    "SensorSuite",
    "IIDSensor",
    "UniformSensor",
    "AR1Sensor",
    "BurstySensor",
    "DiurnalSensor",
    "ConstantSensor",
    "Radio",
    "Scheduler",
    "Task",
    "Platform",
    "MICAZ_LIKE",
    "TELOSB_LIKE",
]
