"""Static branch prediction schemes.

Mote MCUs have no dynamic branch predictor; the pipeline commits to a fixed
guess per branch *site* determined by the code layout.  A conditional branch
in flash falls through to the next block or jumps to a displaced target; the
scheme predicts which.  Code placement therefore controls the misprediction
rate — the quantity the paper's feedback loop minimizes — by choosing which
successor is the fall-through (and, for BTFN, whether the target lies
forward or backward).

The vocabulary here is layout-relative: ``taken`` means control leaves the
fall-through path.
"""

from __future__ import annotations

import abc

from repro.obs import counters as hwc

__all__ = [
    "StaticPredictor",
    "AlwaysNotTakenPredictor",
    "AlwaysTakenPredictor",
    "BTFNPredictor",
    "predictor_by_name",
]


class StaticPredictor(abc.ABC):
    """A static prediction rule for conditional branch sites."""

    name: str = "static"

    @abc.abstractmethod
    def predicts_taken(self, *, backward_target: bool) -> bool:
        """Predicted outcome for a site whose taken-target direction is known.

        ``backward_target`` is True when the branch target sits at a lower
        flash address than the branch (a loop-closing shape).

        This is the *pure* query — analytic callers (the Markov timing
        model, placement scoring) use it freely without leaving a trace.
        """

    def predict(self, *, backward_target: bool) -> bool:
        """Issue a prediction on the live execution path.

        Same answer as :meth:`predicts_taken`, but records the guess in the
        hardware counters (``predict.<scheme>.taken|not_taken``) when they
        are enabled, so prediction mixes per scheme are observable.
        """
        predicted = self.predicts_taken(backward_target=backward_target)
        hw = hwc.active()
        if hw is not None:
            hw.prediction(self.name, predicted)
        return predicted

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AlwaysNotTakenPredictor(StaticPredictor):
    """Predict fall-through everywhere (the simplest pipelines do this)."""

    name = "not-taken"

    def predicts_taken(self, *, backward_target: bool) -> bool:
        return False


class AlwaysTakenPredictor(StaticPredictor):
    """Predict taken everywhere (included as a stress baseline)."""

    name = "taken"

    def predicts_taken(self, *, backward_target: bool) -> bool:
        return True


class BTFNPredictor(StaticPredictor):
    """Backward-taken / forward-not-taken.

    The classic static heuristic: backward branches close loops and are
    usually taken; forward branches skip code and are usually not.
    """

    name = "btfn"

    def predicts_taken(self, *, backward_target: bool) -> bool:
        return backward_target


_PREDICTORS: dict[str, type[StaticPredictor]] = {
    AlwaysNotTakenPredictor.name: AlwaysNotTakenPredictor,
    AlwaysTakenPredictor.name: AlwaysTakenPredictor,
    BTFNPredictor.name: BTFNPredictor,
}


def predictor_by_name(name: str) -> StaticPredictor:
    """Instantiate a predictor from its short name (raises on unknown)."""
    try:
        return _PREDICTORS[name]()
    except KeyError:
        known = ", ".join(sorted(_PREDICTORS))
        raise ValueError(f"unknown predictor {name!r}; known: {known}") from None
