"""A minimal packet radio: logs transmissions for counting and inspection.

The workloads call ``send(value)``; the execution engine forwards each call
here.  Profiling schemes that ship their data off-mote (the tomography
collector uploads timing summaries; full instrumentation uploads counter
tables) also account their traffic through this interface so the energy
comparison charges them fairly.

With a :class:`~repro.faults.FaultInjector` attached, each transmission can
be lost on air or delivered with a corrupted payload; without one (the
default) behaviour is bit-identical to the fault-free radio.  Dropped
packets still cost transmit energy — the loss happens in the channel, not
on the mote — so :attr:`Radio.transmissions` (attempts) is what the energy
model charges, while :attr:`Radio.packet_count` counts deliveries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.obs import counters as hwc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> mote)
    from repro.faults.model import FaultInjector

__all__ = ["Radio", "Packet"]


@dataclass(frozen=True)
class Packet:
    """One transmitted packet: payload value and the send cycle."""

    value: int
    cycle: int


@dataclass
class Radio:
    """Transmission log plus byte accounting."""

    bytes_per_packet: int = 36  # 802.15.4 header + 16-bit payload + MIC
    packets: list[Packet] = field(default_factory=list)
    faults: Optional["FaultInjector"] = field(default=None, repr=False)
    dropped_packets: int = 0
    corrupted_packets: int = 0

    def transmit(self, value: int, cycle: int) -> None:
        """Record one application packet (subject to channel faults, if any)."""
        hw = hwc.active()
        if self.faults is not None:
            fate = self.faults.radio_outcome()
            if fate == "drop":
                self.dropped_packets += 1
                if hw is not None:
                    hw.radio_tx(fate="dropped", payload_bytes=self.bytes_per_packet)
                return
            if fate == "corrupt":
                value = self.faults.corrupt_payload(int(value))
                self.corrupted_packets += 1
                if hw is not None:
                    hw.radio_tx(fate="corrupted", payload_bytes=self.bytes_per_packet)
                self.packets.append(Packet(value=int(value), cycle=int(cycle)))
                return
        if hw is not None:
            hw.radio_tx(fate="delivered", payload_bytes=self.bytes_per_packet)
        self.packets.append(Packet(value=int(value), cycle=int(cycle)))

    @property
    def packet_count(self) -> int:
        """Number of packets delivered."""
        return len(self.packets)

    @property
    def transmissions(self) -> int:
        """Number of packets *sent*, delivered or not (what energy charges)."""
        return self.packet_count + self.dropped_packets

    @property
    def bytes_sent(self) -> int:
        """Total bytes on air (attempts; lost packets still radiate)."""
        return self.transmissions * self.bytes_per_packet

    def values(self) -> list[int]:
        """Payload values in transmission order."""
        return [p.value for p in self.packets]

    def clear(self) -> None:
        """Drop the log and fault tallies (keeps configuration)."""
        self.packets.clear()
        self.dropped_packets = 0
        self.corrupted_packets = 0
