"""A minimal packet radio: logs transmissions for counting and inspection.

The workloads call ``send(value)``; the execution engine forwards each call
here.  Profiling schemes that ship their data off-mote (the tomography
collector uploads timing summaries; full instrumentation uploads counter
tables) also account their traffic through this interface so the energy
comparison charges them fairly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Radio", "Packet"]


@dataclass(frozen=True)
class Packet:
    """One transmitted packet: payload value and the send cycle."""

    value: int
    cycle: int


@dataclass
class Radio:
    """Transmission log plus byte accounting."""

    bytes_per_packet: int = 36  # 802.15.4 header + 16-bit payload + MIC
    packets: list[Packet] = field(default_factory=list)

    def transmit(self, value: int, cycle: int) -> None:
        """Record one application packet."""
        self.packets.append(Packet(value=int(value), cycle=int(cycle)))

    @property
    def packet_count(self) -> int:
        """Number of packets sent."""
        return len(self.packets)

    @property
    def bytes_sent(self) -> int:
        """Total bytes on air."""
        return self.packet_count * self.bytes_per_packet

    def values(self) -> list[int]:
        """Payload values in transmission order."""
        return [p.value for p in self.packets]

    def clear(self) -> None:
        """Drop the log (keeps configuration)."""
        self.packets.clear()
