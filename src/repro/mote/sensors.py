"""Nondeterministic sensor input processes.

The paper's premise is that sensor programs face *nondeterministic inputs*
whose statistics shape branch behaviour.  Each :class:`Sensor` is a discrete
stochastic process read once per ``sense()`` executed by the program; a
:class:`SensorSuite` maps channel names to sensors and owns the RNG stream.

The processes cover the regimes the robustness experiment (F6) needs:

* :class:`IIDSensor` — the Markov model's home turf (independent draws give
  genuinely constant branch probabilities);
* :class:`AR1Sensor` — temporally correlated readings (model mismatch);
* :class:`BurstySensor` — two-regime switching (quiet vs event bursts);
* :class:`DiurnalSensor` — slow deterministic drift of the mean;
* :class:`ConstantSensor` — degenerate, for deterministic tests.

Readings are clamped to a 10-bit ADC range [0, 1023] like a typical mote.
"""

from __future__ import annotations

import abc
import math
from typing import Mapping, Optional

import numpy as np

from repro.errors import MoteError
from repro.obs import counters as hwc
from repro.util.rng import RngSource, as_rng

__all__ = [
    "ADC_MAX",
    "Sensor",
    "ConstantSensor",
    "UniformSensor",
    "IIDSensor",
    "AR1Sensor",
    "BurstySensor",
    "DiurnalSensor",
    "SensorSuite",
]

ADC_MAX = 1023


def _clamp_adc(value: float) -> int:
    return int(min(max(round(value), 0), ADC_MAX))


class Sensor(abc.ABC):
    """A stream of ADC readings."""

    @abc.abstractmethod
    def read(self, rng: np.random.Generator) -> int:
        """Produce the next reading (advances internal state)."""

    def reset(self) -> None:
        """Return to the initial state (default: stateless)."""


class ConstantSensor(Sensor):
    """Always the same value; useful for deterministic tests."""

    def __init__(self, value: int) -> None:
        self.value = _clamp_adc(value)

    def read(self, rng: np.random.Generator) -> int:
        return self.value


class UniformSensor(Sensor):
    """Independent uniform readings over ``[low, high]`` inclusive.

    The workhorse of synthetic workloads: with readings uniform on
    [0, 1023], a source-level test ``sense(ch) > t`` is true with
    probability exactly ``(1023 - t) / 1024``, so generated programs have
    *known* branch probabilities by construction.
    """

    def __init__(self, low: int = 0, high: int = ADC_MAX) -> None:
        if not 0 <= low <= high <= ADC_MAX:
            raise MoteError(f"need 0 <= low <= high <= {ADC_MAX}, got [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)

    def read(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))


class IIDSensor(Sensor):
    """Independent Gaussian readings around a fixed mean."""

    def __init__(self, mean: float, std: float) -> None:
        if std < 0:
            raise MoteError(f"std must be non-negative, got {std}")
        self.mean = float(mean)
        self.std = float(std)

    def read(self, rng: np.random.Generator) -> int:
        return _clamp_adc(rng.normal(self.mean, self.std) if self.std else self.mean)


class AR1Sensor(Sensor):
    """First-order autoregressive readings: ``x' = mean + rho (x - mean) + noise``.

    ``rho`` near 1 yields strongly correlated consecutive readings, breaking
    the independence the Markov execution model implicitly assumes — the
    mismatch probed by experiment F6.
    """

    def __init__(self, mean: float, std: float, rho: float) -> None:
        if not -1.0 < rho < 1.0:
            raise MoteError(f"rho must lie in (-1, 1), got {rho}")
        if std < 0:
            raise MoteError(f"std must be non-negative, got {std}")
        self.mean = float(mean)
        self.std = float(std)
        self.rho = float(rho)
        self._state: Optional[float] = None

    def read(self, rng: np.random.Generator) -> int:
        innovation_std = self.std * math.sqrt(1.0 - self.rho**2)
        if self._state is None:
            self._state = rng.normal(self.mean, self.std) if self.std else self.mean
        else:
            self._state = self.mean + self.rho * (self._state - self.mean) + (
                rng.normal(0.0, innovation_std) if innovation_std else 0.0
            )
        return _clamp_adc(self._state)

    def reset(self) -> None:
        self._state = None


class BurstySensor(Sensor):
    """Two-regime process: quiet baseline with occasional event bursts.

    A hidden two-state Markov chain (quiet/burst) selects which Gaussian the
    reading comes from.  ``p_enter`` and ``p_exit`` are the per-read regime
    switch probabilities.
    """

    def __init__(
        self,
        quiet_mean: float,
        burst_mean: float,
        std: float,
        p_enter: float = 0.02,
        p_exit: float = 0.2,
    ) -> None:
        for name, p in (("p_enter", p_enter), ("p_exit", p_exit)):
            if not 0.0 <= p <= 1.0:
                raise MoteError(f"{name} must lie in [0, 1], got {p}")
        if std < 0:
            raise MoteError(f"std must be non-negative, got {std}")
        self.quiet_mean = float(quiet_mean)
        self.burst_mean = float(burst_mean)
        self.std = float(std)
        self.p_enter = float(p_enter)
        self.p_exit = float(p_exit)
        self._bursting = False

    def read(self, rng: np.random.Generator) -> int:
        if self._bursting:
            if rng.random() < self.p_exit:
                self._bursting = False
        else:
            if rng.random() < self.p_enter:
                self._bursting = True
        mean = self.burst_mean if self._bursting else self.quiet_mean
        return _clamp_adc(rng.normal(mean, self.std) if self.std else mean)

    def reset(self) -> None:
        self._bursting = False


class DiurnalSensor(Sensor):
    """Sinusoidal mean drift, modelling e.g. temperature over a day.

    ``period_reads`` readings complete one cycle; amplitude is in ADC counts.
    """

    def __init__(self, mean: float, amplitude: float, period_reads: int, std: float) -> None:
        if period_reads < 1:
            raise MoteError(f"period_reads must be >= 1, got {period_reads}")
        if std < 0:
            raise MoteError(f"std must be non-negative, got {std}")
        self.mean = float(mean)
        self.amplitude = float(amplitude)
        self.period_reads = int(period_reads)
        self.std = float(std)
        self._t = 0

    def read(self, rng: np.random.Generator) -> int:
        drifted = self.mean + self.amplitude * math.sin(
            2.0 * math.pi * self._t / self.period_reads
        )
        self._t += 1
        return _clamp_adc(rng.normal(drifted, self.std) if self.std else drifted)

    def reset(self) -> None:
        self._t = 0


class SensorSuite:
    """Named sensor channels plus the RNG stream that drives them.

    With a :class:`~repro.faults.FaultInjector` attached (see
    :meth:`attach_faults`), individual reads can brown out to a stuck ADC
    rail value.  The physical process still advances — the underlying
    sensor is read (and its RNG stream consumed) before the dropout fate is
    decided — so enabling dropouts never shifts the sensor value sequence,
    only masks entries of it.
    """

    def __init__(self, channels: Mapping[str, Sensor], rng: RngSource = None) -> None:
        if not channels:
            raise MoteError("a sensor suite needs at least one channel")
        self.channels = dict(channels)
        self._rng = as_rng(rng)
        self.read_count = 0
        self.faults = None  # Optional[repro.faults.FaultInjector]
        self.dropout_count = 0

    def attach_faults(self, faults) -> None:
        """Route subsequent reads through ``faults`` (None to detach)."""
        self.faults = faults

    def read(self, channel: str) -> int:
        """Read one value from ``channel``; raises on unknown channels."""
        try:
            sensor = self.channels[channel]
        except KeyError:
            known = ", ".join(sorted(self.channels))
            raise MoteError(f"unknown sensor channel {channel!r}; known: {known}") from None
        self.read_count += 1
        value = sensor.read(self._rng)
        hw = hwc.active()
        if hw is not None:
            hw.sensor_read()
        if self.faults is not None and self.faults.sensor_faulted():
            self.dropout_count += 1
            if hw is not None:
                hw.sensor_dropout()
            return self.faults.stuck_reading()
        return value

    def reset(self, rng: RngSource = None) -> None:
        """Reset every sensor's internal state (and optionally reseed)."""
        for sensor in self.channels.values():
            sensor.reset()
        if rng is not None:
            self._rng = as_rng(rng)
        self.read_count = 0
        self.dropout_count = 0
