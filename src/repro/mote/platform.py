"""Platform presets bundling the hardware sub-models.

Two presets mirror the mote families the original evaluation would have used:

* :data:`MICAZ_LIKE` — ATmega128-flavoured: 7.37 MHz core, hardware
  multiplier, 128 KiB flash / 4 KiB RAM, TinyOS TMicro-class timestamp
  timer (~1 MHz → 8 cycles per tick);
* :data:`TELOSB_LIKE` — MSP430-flavoured: 4 MHz core, slightly cheaper
  memory ops, 48 KiB flash / 10 KiB RAM, ~1 MHz timer (4 cycles per tick).

The coarse 32.768 kHz crystal (225 cycles/tick on the MicaZ-like core) is
exercised by the F3 resolution sweep rather than used as the default — with
sub-millisecond procedures it quantizes most measurements to zero.

Experiments parameterize over these so results are not an artifact of one
cost table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ir.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.mote.cpu import CpuModel
from repro.mote.energy import EnergyModel
from repro.mote.memory import MemoryMap
from repro.mote.predictor import StaticPredictor, BTFNPredictor
from repro.mote.timer import TimestampTimer

__all__ = ["Platform", "MICAZ_LIKE", "TELOSB_LIKE"]


@dataclass(frozen=True)
class Platform:
    """One mote family's hardware parameters, bundled."""

    name: str
    cpu: CpuModel
    timer: TimestampTimer
    energy: EnergyModel
    memory: MemoryMap

    def with_predictor(self, predictor: StaticPredictor) -> "Platform":
        """Same platform, different static branch scheme."""
        return replace(self, cpu=replace(self.cpu, predictor=predictor))

    def with_timer(self, timer: TimestampTimer) -> "Platform":
        """Same platform, different timestamp timer (resolution sweeps)."""
        return replace(self, timer=timer)


MICAZ_LIKE = Platform(
    name="micaz-like",
    cpu=CpuModel(cost_model=DEFAULT_COST_MODEL, predictor=BTFNPredictor()),
    timer=TimestampTimer(cycles_per_tick=8),
    energy=EnergyModel(clock_hz=7_372_800.0, cpu_active_ma=8.0),
    memory=MemoryMap(flash_bytes=128 * 1024, ram_bytes=4 * 1024),
)

_TELOS_COSTS = CostModel(
    opcode_cycles={**DEFAULT_COST_MODEL.opcode_cycles, **{}},
    binop_cycles=dict(DEFAULT_COST_MODEL.binop_cycles),
    call_overhead=6,
    return_overhead=5,
)

TELOSB_LIKE = Platform(
    name="telosb-like",
    cpu=CpuModel(
        cost_model=_TELOS_COSTS,
        predictor=BTFNPredictor(),
        jump_cycles=2,
        branch_base_cycles=2,
        taken_extra_cycles=1,
        mispredict_penalty_cycles=2,
    ),
    timer=TimestampTimer(cycles_per_tick=4),
    energy=EnergyModel(clock_hz=4_000_000.0, cpu_active_ma=1.8),
    memory=MemoryMap(flash_bytes=48 * 1024, ram_bytes=10 * 1024),
)
