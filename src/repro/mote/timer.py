"""Timestamp timers: the only instrument Code Tomography gets to use.

Motes timestamp with a counter that ticks far slower than the CPU clock
(e.g. a 32.768 kHz crystal against a 7.37 MHz core).  An end-to-end duration
measured as ``tick(end) - tick(start)`` therefore carries quantization error
of up to one tick plus electrical jitter.  :class:`TimestampTimer` converts
exact simulated cycle counts into such degraded measurements, which is what
the estimators are fed in every experiment — accuracy versus timer
resolution is evaluation F3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import MoteError
from repro.obs import counters as hwc
from repro.util.rng import RngSource, as_rng

__all__ = ["TimestampTimer"]


@dataclass(frozen=True)
class TimestampTimer:
    """A free-running tick counter driven by the CPU cycle count.

    Parameters
    ----------
    cycles_per_tick:
        CPU cycles per timer tick (≥ 1).  ``1`` models an ideal cycle
        counter; ``225`` models 32.768 kHz ticks on a 7.37 MHz core.
    jitter_cycles:
        Standard deviation of zero-mean Gaussian noise added to each raw
        *timestamp*, in cycles — interrupt latency and crystal drift.
    phase:
        Fractional tick offset in ``[0, 1)`` of the counter at cycle zero.
    drift_ppm:
        Systematic crystal drift in parts per million: the timer counts
        ``1 + drift_ppm * 1e-6`` ticks per nominal tick, so every measured
        duration is scaled by that factor.  Zero (the default) is exact
        no-op; real 32.768 kHz crystals sit in the ±20–100 ppm range.
    """

    cycles_per_tick: int = 1
    jitter_cycles: float = 0.0
    phase: float = 0.0
    drift_ppm: float = 0.0

    def __post_init__(self) -> None:
        if self.cycles_per_tick < 1:
            raise MoteError(f"cycles_per_tick must be >= 1, got {self.cycles_per_tick}")
        if self.jitter_cycles < 0:
            raise MoteError(f"jitter_cycles must be >= 0, got {self.jitter_cycles}")
        if not 0.0 <= self.phase < 1.0:
            raise MoteError(f"phase must lie in [0, 1), got {self.phase}")
        if abs(self.drift_ppm) >= 1e6:
            raise MoteError(f"|drift_ppm| must be < 1e6, got {self.drift_ppm}")

    @property
    def drift_scale(self) -> float:
        """Multiplicative factor the drifting crystal applies to durations."""
        return 1.0 + self.drift_ppm * 1e-6

    def noise_variance(self) -> float:
        """Variance this timer adds to one measured duration, in cycles².

        Quantizing both endpoints contributes ``cycles_per_tick**2 / 6``
        (two independent uniform(0, cpt) errors differenced); jitter at both
        endpoints contributes ``2 * jitter_cycles**2``.  Drift is a bias,
        not a variance, and is corrected separately (see
        :func:`repro.core.moments_fit.fit_moments`).
        """
        return self.cycles_per_tick**2 / 6.0 + 2.0 * self.jitter_cycles**2

    def tick_at(self, cycle: float, rng: RngSource = None) -> int:
        """Timer reading at absolute CPU ``cycle`` (drift and jitter applied)."""
        if cycle < 0:
            raise MoteError(f"cycle must be non-negative, got {cycle}")
        observed = float(cycle)
        if self.drift_ppm != 0.0:
            observed *= self.drift_scale
        if self.jitter_cycles > 0:
            observed = max(0.0, observed + as_rng(rng).normal(0.0, self.jitter_cycles))
        return int(math.floor(observed / self.cycles_per_tick + self.phase))

    def measure_cycles(self, start_cycle: float, end_cycle: float, rng: RngSource = None) -> float:
        """Duration estimate in cycles, as the mote firmware would compute it.

        Reads the counter at both boundaries and scales the tick delta back
        to cycles; resolution loss and jitter are inherent.
        """
        if end_cycle < start_cycle:
            raise MoteError("end_cycle must be >= start_cycle")
        gen = as_rng(rng)
        start_tick = self.tick_at(start_cycle, gen)
        end_tick = self.tick_at(end_cycle, gen)
        measured = float((end_tick - start_tick) * self.cycles_per_tick)
        hw = hwc.active()
        if hw is not None:
            hw.timer_measure(
                ticks=end_tick - start_tick,
                quantization_error_cycles=abs(measured - (end_cycle - start_cycle)),
            )
        return measured

    @property
    def resolution_cycles(self) -> int:
        """Worst-case quantization granularity in cycles."""
        return self.cycles_per_tick
