"""Energy accounting for profiling-overhead comparisons (evaluation T2).

Currents follow CC2420/ATmega-class datasheet orders of magnitude.  Energy is
integrated from event counts rather than waveforms: active CPU cycles, ADC
conversions, radio packet transmissions.  Only *relative* overhead matters to
the reproduction (instrumented vs tomography builds on identical workloads),
so the model favours transparency over electrical detail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MoteError

__all__ = ["EnergyModel"]


@dataclass(frozen=True)
class EnergyModel:
    """Convert activity counts into millijoules."""

    voltage: float = 3.0
    clock_hz: float = 7_372_800.0
    cpu_active_ma: float = 8.0
    adc_ma: float = 1.0  # extra draw during a conversion
    adc_conversion_s: float = 200e-6
    radio_tx_ma: float = 17.4
    radio_tx_s_per_packet: float = 4e-3  # 128-byte frame at 250 kbps + turnaround

    def __post_init__(self) -> None:
        for field_name in (
            "voltage",
            "clock_hz",
            "cpu_active_ma",
            "adc_ma",
            "adc_conversion_s",
            "radio_tx_ma",
            "radio_tx_s_per_packet",
        ):
            if getattr(self, field_name) <= 0:
                raise MoteError(f"{field_name} must be positive")

    def cpu_mj(self, cycles: float) -> float:
        """Energy of ``cycles`` of active CPU time."""
        if cycles < 0:
            raise MoteError("cycles must be non-negative")
        seconds = cycles / self.clock_hz
        return self.cpu_active_ma * self.voltage * seconds

    def adc_mj(self, conversions: int) -> float:
        """Extra energy of ``conversions`` ADC reads."""
        if conversions < 0:
            raise MoteError("conversions must be non-negative")
        return self.adc_ma * self.voltage * self.adc_conversion_s * conversions

    def radio_mj(self, packets: int) -> float:
        """Energy of ``packets`` radio transmissions."""
        if packets < 0:
            raise MoteError("packets must be non-negative")
        return self.radio_tx_ma * self.voltage * self.radio_tx_s_per_packet * packets

    def total_mj(self, *, cycles: float, conversions: int = 0, packets: int = 0) -> float:
        """Total energy of a run described by its activity counts."""
        return self.cpu_mj(cycles) + self.adc_mj(conversions) + self.radio_mj(packets)
