"""A TinyOS-flavoured cooperative task scheduler.

TinyOS applications are event-driven: timers fire, post tasks, tasks run to
completion.  The reproduction's workloads are activated the same way — each
periodic timer activation invokes the program's entry procedure once.  The
scheduler keeps a virtual clock in CPU cycles, interleaves multiple periodic
tasks deterministically (earliest deadline, FIFO on ties), and supports
one-shot posts, which is enough to express the demo applications and to give
the batch runner realistic inter-activation spacing.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import MoteError
from repro.obs import counters as hwc

__all__ = ["Task", "Scheduler"]


@dataclass(frozen=True)
class Task:
    """A schedulable unit: a callable run with the activation cycle."""

    name: str
    action: Callable[[int], None]
    period_cycles: Optional[int] = None  # None = one-shot


class Scheduler:
    """Earliest-deadline-first cooperative scheduler over a cycle clock."""

    def __init__(self) -> None:
        self.now_cycles = 0
        self._queue: list[tuple[int, int, Task]] = []
        self._tie = itertools.count()
        self.activations = 0

    def post(self, task: Task, delay_cycles: int = 0) -> None:
        """Schedule ``task`` to run ``delay_cycles`` from now."""
        if delay_cycles < 0:
            raise MoteError(f"delay_cycles must be non-negative, got {delay_cycles}")
        if task.period_cycles is not None and task.period_cycles <= 0:
            raise MoteError(f"period_cycles must be positive, got {task.period_cycles}")
        heapq.heappush(self._queue, (self.now_cycles + delay_cycles, next(self._tie), task))
        hw = hwc.active()
        if hw is not None:
            hw.sched_post()

    def step(self) -> bool:
        """Run the next task; False when the queue is empty.

        The clock jumps to the task's activation time before it runs.  Tasks
        run to completion (cooperative), matching the TinyOS model where a
        long task delays everything behind it.
        """
        if not self._queue:
            return False
        when, _, task = heapq.heappop(self._queue)
        self.now_cycles = max(self.now_cycles, when)
        hw = hwc.active()
        if hw is not None:
            hw.sched_switch()
        task.action(self.now_cycles)
        self.activations += 1
        if task.period_cycles is not None:
            heapq.heappush(
                self._queue, (when + task.period_cycles, next(self._tie), task)
            )
        return True

    def run(self, *, max_activations: Optional[int] = None, until_cycles: Optional[int] = None) -> int:
        """Run until a bound is hit or the queue drains; returns activations run."""
        if max_activations is None and until_cycles is None:
            raise MoteError("run() needs max_activations or until_cycles")
        ran = 0
        while self._queue:
            if max_activations is not None and ran >= max_activations:
                break
            if until_cycles is not None and self._queue[0][0] > until_cycles:
                break
            if not self.step():
                break
            ran += 1
        return ran

    def advance(self, cycles: int) -> None:
        """Consume CPU time on the virtual clock (called by task bodies)."""
        if cycles < 0:
            raise MoteError(f"cycles must be non-negative, got {cycles}")
        self.now_cycles += cycles

    @property
    def pending(self) -> int:
        """Number of queued activations."""
        return len(self._queue)
