"""Flash (ROM) and RAM sizing of compiled programs and profiling variants.

Mote MCUs are brutally memory-constrained (MicaZ: 128 KiB flash, 4 KiB RAM),
which is the paper's motivation for *not* keeping a counter per edge on the
device.  This model sizes:

* **ROM**: 2 flash bytes per instruction word, with wide ops (call, load,
  store, sense, send) at 4 bytes, plus terminator words;
* **RAM**: 2 bytes per scalar global, ``2 * size`` per array, plus a stack
  allowance per procedure — and whatever the active profiling scheme adds
  (per-edge counters, sample buffers, timestamp accumulators), which is
  priced by :mod:`repro.profiling.overhead` on top of this baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.block import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.instructions import Branch, Jump, Opcode, Return
from repro.ir.procedure import Procedure
from repro.ir.program import Program

__all__ = ["MemoryMap"]

_WIDE_OPCODES = {Opcode.CALL, Opcode.LOAD, Opcode.STORE, Opcode.SENSE, Opcode.SEND}


@dataclass(frozen=True)
class MemoryMap:
    """Byte-level sizing rules for one MCU family."""

    flash_bytes: int = 128 * 1024
    ram_bytes: int = 4 * 1024
    word_bytes: int = 2
    wide_word_bytes: int = 4
    stack_bytes_per_procedure: int = 32

    def instruction_rom(self, opcode: Opcode) -> int:
        """Flash bytes of one instruction."""
        return self.wide_word_bytes if opcode in _WIDE_OPCODES else self.word_bytes

    def block_rom(self, block: BasicBlock) -> int:
        """Flash bytes of a block including its terminator."""
        body = sum(self.instruction_rom(i.opcode) for i in block.instructions)
        term = block.terminator
        if isinstance(term, Branch):
            body += self.wide_word_bytes  # compare-and-branch pair
        elif isinstance(term, (Jump, Return)):
            body += self.word_bytes
        return body

    def cfg_rom(self, cfg: CFG) -> int:
        """Flash bytes of one procedure's code."""
        return sum(self.block_rom(b) for b in cfg)

    def procedure_ram(self, proc: Procedure) -> int:
        """RAM attributable to one procedure (stack frame allowance)."""
        return self.stack_bytes_per_procedure + self.word_bytes * len(proc.params)

    def program_rom(self, program: Program) -> int:
        """Flash bytes of the whole program image."""
        return sum(self.cfg_rom(p.cfg) for p in program)

    def program_ram(self, program: Program) -> int:
        """RAM of globals, arrays and stack allowances."""
        data = self.word_bytes * len(program.globals_)
        data += sum(self.word_bytes * size for size in program.arrays.values())
        data += sum(self.procedure_ram(p) for p in program)
        return data

    def fits(self, program: Program) -> bool:
        """True when the program fits the device budgets."""
        return (
            self.program_rom(program) <= self.flash_bytes
            and self.program_ram(program) <= self.ram_bytes
        )
