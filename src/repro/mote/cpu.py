"""CPU timing: straight-line costs plus layout-dependent control transfer.

The straight-line half delegates to :class:`repro.ir.costmodel.CostModel`.
The control-transfer half is what placement optimizes:

* an **unconditional jump** to the next block in flash is free (it is elided
  by the layout); to anywhere else it costs ``jump_cycles``;
* a **conditional branch** always pays ``branch_base_cycles``; if control
  leaves the fall-through path it additionally pays ``taken_extra_cycles``
  (fetch redirect), and if the static scheme guessed wrong it pays
  ``mispredict_penalty_cycles`` (pipeline refill);
* **returns** pay the cost model's return overhead.

:class:`BranchTiming` is the record the simulator emits per dynamic branch so
profilers and the evaluation can count taken branches and mispredictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.ir.block import BasicBlock
from repro.mote.predictor import BTFNPredictor, StaticPredictor
from repro.obs import counters as hwc

__all__ = ["BranchTiming", "CpuModel"]


@dataclass(frozen=True)
class BranchTiming:
    """Outcome and cost of one dynamic conditional-branch execution."""

    taken: bool
    predicted_taken: bool
    cycles: int

    @property
    def mispredicted(self) -> bool:
        """True when the static guess disagreed with the outcome."""
        return self.taken != self.predicted_taken


@dataclass(frozen=True)
class CpuModel:
    """An in-order mote MCU's cycle accounting."""

    cost_model: CostModel = DEFAULT_COST_MODEL
    predictor: StaticPredictor = None  # type: ignore[assignment]
    jump_cycles: int = 2
    branch_base_cycles: int = 1
    taken_extra_cycles: int = 1
    mispredict_penalty_cycles: int = 3

    def __post_init__(self) -> None:
        if self.predictor is None:
            object.__setattr__(self, "predictor", BTFNPredictor())

    # -- straight-line ------------------------------------------------------

    def block_cycles(self, block: BasicBlock) -> int:
        """Deterministic cost of a block's instructions (no terminator).

        This is the *execution* entry point: it reports a flash block fetch
        to the hardware counters when they are enabled.  Analytic callers
        that only price a block (the Markov timing model, the sampling-
        profiler estimator) go through ``cpu.cost_model.block_cycles``
        directly so predicted work never pollutes the counters.
        """
        cycles = self.cost_model.block_cycles(block)
        hw = hwc.active()
        if hw is not None:
            hw.block(cycles)
        return cycles

    # -- control transfer -----------------------------------------------------

    def jump_cost(self, *, fallthrough: bool) -> int:
        """Cost of an unconditional transfer (0 when elided by layout)."""
        return 0 if fallthrough else self.jump_cycles

    def return_cost(self) -> int:
        """Cost of leaving a procedure."""
        return self.cost_model.return_overhead

    def branch_outcome(self, *, taken: bool, backward_target: bool) -> BranchTiming:
        """Price one dynamic conditional branch.

        ``taken`` is layout-relative (control left the fall-through path);
        ``backward_target`` describes where the taken-target sits in flash,
        which is what a static BTFN scheme keys on.
        """
        predicted = self.predictor.predict(backward_target=backward_target)
        cycles = self.branch_base_cycles
        if taken:
            cycles += self.taken_extra_cycles
        if taken != predicted:
            cycles += self.mispredict_penalty_cycles
        hw = hwc.active()
        if hw is not None:
            hw.branch(
                taken=taken,
                predicted_taken=predicted,
                backward_target=backward_target,
                cycles=cycles,
            )
        return BranchTiming(taken=taken, predicted_taken=predicted, cycles=cycles)

    def branch_cost(self, *, taken: bool, backward_target: bool) -> int:
        """Cycle cost only, for analytic pricing (never touches counters)."""
        return self._branch_timing(taken=taken, backward_target=backward_target).cycles

    def _branch_timing(self, *, taken: bool, backward_target: bool) -> BranchTiming:
        predicted = self.predictor.predicts_taken(backward_target=backward_target)
        cycles = self.branch_base_cycles
        if taken:
            cycles += self.taken_extra_cycles
        if taken != predicted:
            cycles += self.mispredict_penalty_cycles
        return BranchTiming(taken=taken, predicted_taken=predicted, cycles=cycles)
