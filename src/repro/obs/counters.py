"""Mote hardware-counter telemetry: what a real MCU's counters would see.

The paper contrasts profiling schemes by *what they can observe on the
mote*; this module gives the simulated mote the same observability a
hardware-performance-counter unit would — cycles by instruction class,
branch outcomes and mispredictions (split by direction and by target
placement), flash block fetches, radio transmission attempts and energy,
sensor reads, timer reads with their quantization-error budget, and
scheduler activity — exported as first-class telemetry instead of being
recomputed ad hoc by every experiment.

Design follows the :mod:`repro.obs` house rules:

* **Zero-cost-when-off.**  Instrumented sites read the module-level
  :data:`_ACTIVE` slot (via :func:`active`) and return immediately when no
  registry is installed: no allocation, no locking, no RNG draws, no
  effect on any rendered table.  The enabled path is plain dict arithmetic.
* **Mergeable, diffable snapshots.**  :meth:`HardwareCounters.snapshot`
  produces a plain-JSON dict; :func:`merge_snapshots` is associative and
  commutative (integer sums), and ``diff_snapshots(a, merge_snapshots(a,
  b)) == b`` — the algebra the engine's deterministic merge and the
  benchmark-history layer (:mod:`repro.obs.bench_history`) both lean on.
* **Per-procedure attribution.**  The interpreter brackets each procedure
  invocation with :meth:`push_proc`/:meth:`pop_proc`; events attribute
  their *exclusive* (self) counts to the innermost open procedure, so the
  per-procedure table answers "where did the cycles go" the same way a
  sampling profiler would.

Scoping: :func:`counters_active` installs a registry for the ``with``
body.  By default a nested registry *folds its counts into the outer one
on exit*, so a caller can take a clean per-run delta (F4 does this per
placement strategy) without hiding those events from an ambient
experiment- or CLI-level registry.  Capture boundaries that ship
snapshots across processes (the engine's per-unit and per-experiment
capture) pass ``isolated=True`` and merge explicitly, in request order.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping, Optional, Union

from repro.errors import ObsError

__all__ = [
    "SNAPSHOT_SCHEMA",
    "FLOAT_COUNTER_RTOL",
    "HardwareCounters",
    "active",
    "current_counters",
    "counters_active",
    "empty_snapshot",
    "merge_snapshots",
    "diff_snapshots",
    "snapshot_deltas",
    "counter_group",
    "total_cycles",
    "branches_executed",
    "mispredict_total",
    "mispredict_rate",
    "taken_rate",
    "dynamic_edges",
    "invocations_total",
    "format_counters",
]

#: Schema tag carried by every snapshot (bumped on layout changes).
SNAPSHOT_SCHEMA = "repro.hwcounters/1"

#: Relative tolerance applied to float-valued counters (``radio.energy_uj``,
#: ``timer.quantization_error_cycles``) in the snapshot algebra.  Float
#: addition is not associative, so merging the same events in a different
#: grouping (scalar vs. vectorized engine, different ``--jobs``) can leave
#: the accumulated energy a few ULPs apart; the PR-7 caveat.  Integer
#: counters stay exact.
FLOAT_COUNTER_RTOL = 1e-9

Number = Union[int, float]


def _float_noise(delta: Number, before: Number, after: Number) -> bool:
    """True when a float counter's delta is merge-order rounding, not signal."""
    if isinstance(delta, int):
        return False
    scale = max(abs(before), abs(after), 1.0)
    return abs(delta) <= FLOAT_COUNTER_RTOL * scale


class HardwareCounters:
    """One mote's hardware-counter register file.

    ``totals`` maps counter name to value; ``per_proc`` maps procedure name
    to its attribution row (``cycles``, ``invocations``, ``branches``,
    ``taken``, ``mispredicts`` — exclusive/self counts).  All counters are
    monotonically non-decreasing while the registry is installed.
    """

    __slots__ = ("totals", "per_proc", "_proc_stack")

    def __init__(self) -> None:
        self.totals: dict[str, Number] = {}
        self.per_proc: dict[str, dict[str, Number]] = {}
        self._proc_stack: list[str] = []

    # -- low-level increments ------------------------------------------------

    def add(self, name: str, amount: Number = 1) -> None:
        """Increment total counter ``name`` (creating it at zero)."""
        totals = self.totals
        totals[name] = totals.get(name, 0) + amount

    def _proc_add(self, key: str, amount: Number) -> None:
        if self._proc_stack:
            row = self.per_proc.setdefault(self._proc_stack[-1], {})
            row[key] = row.get(key, 0) + amount

    def add_proc(self, proc: str, key: str, amount: Number) -> None:
        """Attribute ``amount`` to ``proc``'s row directly (no open scope).

        The scalar interpreter attributes through the
        :meth:`push_proc`/:meth:`pop_proc` stack; batch engines that execute
        whole cohorts of one procedure at a time know the procedure
        statically and attribute here, producing the same rows.
        """
        row = self.per_proc.setdefault(proc, {})
        row[key] = row.get(key, 0) + amount

    # -- procedure attribution (driven by the interpreter) -------------------

    def push_proc(self, name: str) -> None:
        """Open a procedure scope; events now attribute to ``name``."""
        self._proc_stack.append(name)
        row = self.per_proc.setdefault(name, {})
        row["invocations"] = row.get("invocations", 0) + 1

    def pop_proc(self) -> None:
        """Close the innermost procedure scope."""
        self._proc_stack.pop()

    # -- CPU -----------------------------------------------------------------

    def block(self, cycles: int) -> None:
        """One basic block fetched from flash and executed."""
        self.add("cycles.block", cycles)
        self.add("flash.fetches")
        self._proc_add("cycles", cycles)

    def jump(self, cycles: int) -> None:
        """One unconditional-jump terminator (counts as a dynamic edge)."""
        self.add("control.jumps")
        if cycles:
            self.add("cycles.jump", cycles)
        self._proc_add("cycles", cycles)

    def extra_jump(self, cycles: int) -> None:
        """A layout-inserted jump on a branch arm (cycles, not an edge)."""
        self.add("cycles.jump", cycles)
        self._proc_add("cycles", cycles)

    def ret(self, cycles: int) -> None:
        """One procedure return."""
        self.add("cycles.return", cycles)
        self._proc_add("cycles", cycles)

    def branch(
        self, *, taken: bool, predicted_taken: bool, backward_target: bool, cycles: int
    ) -> None:
        """One dynamic conditional branch, fully classified."""
        self.add("branch.taken" if taken else "branch.not_taken")
        self.add("cycles.branch", cycles)
        self._proc_add("cycles", cycles)
        self._proc_add("branches", 1)
        if taken:
            self._proc_add("taken", 1)
        if taken != predicted_taken:
            self.add("branch.mispredict.taken" if taken else "branch.mispredict.not_taken")
            self.add(
                "branch.mispredict.backward_target"
                if backward_target
                else "branch.mispredict.forward_target"
            )
            self._proc_add("mispredicts", 1)

    def prediction(self, scheme: str, predicted_taken: bool) -> None:
        """One static prediction issued by ``scheme`` on the live path."""
        arm = "taken" if predicted_taken else "not_taken"
        self.add(f"predict.{scheme}.{arm}")

    # -- peripherals ---------------------------------------------------------

    def radio_tx(self, *, fate: str, payload_bytes: int) -> None:
        """One transmission attempt; ``fate`` is delivered/dropped/corrupted."""
        self.add("radio.tx_attempts")
        self.add(f"radio.tx_{fate}")
        self.add("radio.tx_bytes", payload_bytes)

    def radio_energy(self, uj: float) -> None:
        """Radio transmit energy in microjoules (priced by the caller)."""
        self.add("radio.energy_uj", uj)

    def sensor_read(self) -> None:
        self.add("sensor.reads")

    def sensor_dropout(self) -> None:
        self.add("sensor.dropouts")

    def timer_measure(self, *, ticks: int, quantization_error_cycles: float) -> None:
        """One two-read duration measurement on the timestamp timer."""
        self.add("timer.reads", 2)
        self.add("timer.ticks", ticks)
        self.add("timer.quantization_error_cycles", quantization_error_cycles)

    def sched_switch(self) -> None:
        self.add("sched.context_switches")

    def sched_post(self) -> None:
        self.add("sched.posts")

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-JSON view: ``{"schema", "totals", "per_proc"}``."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "totals": dict(self.totals),
            "per_proc": {name: dict(row) for name, row in self.per_proc.items()},
        }

    def merge_snapshot(self, snap: Mapping) -> None:
        """Fold a snapshot captured elsewhere into this registry (adds)."""
        _check_schema(snap)
        for name, value in snap.get("totals", {}).items():
            self.add(name, value)
        for proc, row in snap.get("per_proc", {}).items():
            mine = self.per_proc.setdefault(proc, {})
            for key, value in row.items():
                mine[key] = mine.get(key, 0) + value


# --------------------------------------------------------------------------
# Snapshot algebra (pure functions over plain dicts)
# --------------------------------------------------------------------------


def _check_schema(snap: Mapping) -> None:
    schema = snap.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ObsError(
            f"hardware-counter snapshot schema mismatch: "
            f"expected {SNAPSHOT_SCHEMA!r}, got {schema!r}"
        )


def empty_snapshot() -> dict:
    """The identity element of :func:`merge_snapshots`."""
    return {"schema": SNAPSHOT_SCHEMA, "totals": {}, "per_proc": {}}


def _add_maps(a: Mapping[str, Number], b: Mapping[str, Number]) -> dict[str, Number]:
    out = dict(a)
    for key, value in b.items():
        out[key] = out.get(key, 0) + value
    return out


def merge_snapshots(a: Mapping, b: Mapping) -> dict:
    """Counter-wise sum of two snapshots (associative and commutative)."""
    _check_schema(a)
    _check_schema(b)
    per_proc = {name: dict(row) for name, row in a.get("per_proc", {}).items()}
    for name, row in b.get("per_proc", {}).items():
        per_proc[name] = _add_maps(per_proc.get(name, {}), row)
    return {
        "schema": SNAPSHOT_SCHEMA,
        "totals": _add_maps(a.get("totals", {}), b.get("totals", {})),
        "per_proc": per_proc,
    }


def diff_snapshots(before: Mapping, after: Mapping) -> dict:
    """``after - before``: what happened between two snapshots of one run.

    Zero-valued entries are dropped, so a diff against a fresh registry is
    canonical: ``diff_snapshots(a, merge_snapshots(a, b)) == b`` for any
    zero-free ``b``.  Counters only go up, so a negative delta means the
    snapshots came from different registries — a loud :class:`ObsError` —
    **except** for float-valued counters, where a delta within
    :data:`FLOAT_COUNTER_RTOL` of zero (either sign) is merge-order
    rounding noise and is treated as exactly zero rather than either
    raising or surviving as a spurious entry.
    """
    _check_schema(before)
    _check_schema(after)

    def sub(b: Mapping[str, Number], a: Mapping[str, Number], where: str) -> dict:
        out = {}
        for key in a.keys() | b.keys():
            delta = a.get(key, 0) - b.get(key, 0)
            if _float_noise(delta, b.get(key, 0), a.get(key, 0)):
                continue
            if delta < 0:
                raise ObsError(
                    f"counter {where}{key!r} went backwards ({a.get(key, 0)} < "
                    f"{b.get(key, 0)}); snapshots are not from one registry"
                )
            if delta:
                out[key] = delta
        return out

    per_proc = {}
    before_procs = before.get("per_proc", {})
    after_procs = after.get("per_proc", {})
    for proc in before_procs.keys() | after_procs.keys():
        row = sub(before_procs.get(proc, {}), after_procs.get(proc, {}), f"{proc}.")
        if row:
            per_proc[proc] = row
    return {
        "schema": SNAPSHOT_SCHEMA,
        "totals": sub(before.get("totals", {}), after.get("totals", {}), ""),
        "per_proc": per_proc,
    }


def counter_group(name: str) -> str:
    """The counter's group: its dotted prefix (``cycles``, ``radio``, ...).

    Attribution reports roll movers up by group so "F4 got slower" can be
    localized to *which subsystem* moved (instruction cycles, mispredicts,
    flash fetches, radio energy) before drilling into individual counters.
    """
    return name.split(".", 1)[0]


def snapshot_deltas(
    before: Mapping, after: Mapping, top: Optional[int] = None
) -> list[dict]:
    """Signed per-counter movement between two runs, biggest movers first.

    Unlike :func:`diff_snapshots` — the monoid inverse over snapshots of
    *one* registry, where a negative delta is a contract violation — this
    compares snapshots of two *different* runs, so deltas carry sign in
    both directions.  Float counters (``radio.energy_uj``) get the
    :data:`FLOAT_COUNTER_RTOL` treatment: merge-order rounding noise reads
    as exactly zero instead of ranking as a mover.

    Returns one row per moved counter::

        {"counter", "group", "before", "after", "delta", "relative"}

    ``relative`` is ``delta / before`` (``None`` for a counter that did not
    exist before).  The ordering is **stable and total**: descending by
    ``|delta|``, then ascending by counter name — two identical snapshot
    pairs always produce the identical row list, which is what makes
    attribution reports byte-reproducible.  ``top`` truncates to the N
    biggest movers.
    """
    _check_schema(before)
    _check_schema(after)
    rows = []
    b_totals = before.get("totals", {})
    a_totals = after.get("totals", {})
    for key in b_totals.keys() | a_totals.keys():
        b_val, a_val = b_totals.get(key, 0), a_totals.get(key, 0)
        delta = a_val - b_val
        if not delta or _float_noise(delta, b_val, a_val):
            continue
        rows.append(
            {
                "counter": key,
                "group": counter_group(key),
                "before": b_val,
                "after": a_val,
                "delta": delta,
                "relative": (delta / b_val) if b_val else None,
            }
        )
    rows.sort(key=lambda r: (-abs(r["delta"]), r["counter"]))
    return rows[:top] if top is not None else rows


# --------------------------------------------------------------------------
# Derived readings (the quantities experiments consume)
# --------------------------------------------------------------------------


def total_cycles(snap: Mapping) -> int:
    """Sum of every cycle class — equals the interpreter's cycle counter."""
    totals = snap.get("totals", {})
    return sum(totals.get(f"cycles.{cls}", 0) for cls in ("block", "jump", "branch", "return"))


def branches_executed(snap: Mapping) -> int:
    totals = snap.get("totals", {})
    return totals.get("branch.taken", 0) + totals.get("branch.not_taken", 0)


def mispredict_total(snap: Mapping) -> int:
    totals = snap.get("totals", {})
    return totals.get("branch.mispredict.taken", 0) + totals.get(
        "branch.mispredict.not_taken", 0
    )


def mispredict_rate(snap: Mapping) -> float:
    """Mispredicted fraction of executed branches (0.0 when none ran).

    Computed as the same integer division the ground-truth
    :class:`~repro.sim.trace.ExecutionCounters` performs, so the two
    sources agree bit for bit.
    """
    executed = branches_executed(snap)
    if executed == 0:
        return 0.0
    return mispredict_total(snap) / executed


def taken_rate(snap: Mapping) -> float:
    """Taken fraction of executed branches (0.0 when none ran)."""
    executed = branches_executed(snap)
    if executed == 0:
        return 0.0
    return snap.get("totals", {}).get("branch.taken", 0) / executed


def dynamic_edges(snap: Mapping) -> int:
    """CFG edges traversed: jump terminators plus branch executions."""
    return snap.get("totals", {}).get("control.jumps", 0) + branches_executed(snap)


def invocations_total(snap: Mapping) -> int:
    return sum(row.get("invocations", 0) for row in snap.get("per_proc", {}).values())


def format_counters(snap: Mapping) -> str:
    """Terminal-ready text table of a snapshot (sorted, deterministic)."""
    lines = ["== hardware counters =="]
    totals = snap.get("totals", {})
    if not totals:
        lines.append("(no events recorded)")
    else:
        width = max(len(name) for name in totals)
        for name in sorted(totals):
            value = totals[name]
            rendered = f"{value:.3f}" if isinstance(value, float) else str(value)
            lines.append(f"{name.ljust(width)}  {rendered}")
    per_proc = snap.get("per_proc", {})
    if per_proc:
        keys = ("invocations", "cycles", "branches", "taken", "mispredicts")
        lines.append("")
        lines.append("== per-procedure attribution (self counts) ==")
        width = max(len(name) for name in per_proc)
        header = "procedure".ljust(width) + "".join(f"  {k:>12}" for k in keys)
        lines.append(header)
        for proc in sorted(per_proc):
            row = per_proc[proc]
            lines.append(
                proc.ljust(width)
                + "".join(f"  {row.get(k, 0):>12}" for k in keys)
            )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# The installed registry (one per process; workers install their own)
# --------------------------------------------------------------------------

_ACTIVE: Optional[HardwareCounters] = None


def active() -> Optional[HardwareCounters]:
    """The installed registry, or ``None`` when counters are off.

    This is the single enable flag: every emission site in the mote model
    and the interpreter reads it and bails out on ``None`` before doing any
    work at all.
    """
    return _ACTIVE


def current_counters() -> Optional[HardwareCounters]:
    """Alias of :func:`active`, matching the tracer/metrics naming."""
    return _ACTIVE


@contextmanager
def counters_active(
    hc: HardwareCounters, isolated: bool = False
) -> Iterator[HardwareCounters]:
    """Install ``hc`` as the process-wide registry for the ``with`` body.

    On exit the previous registry is restored and — unless ``isolated`` —
    ``hc``'s counts fold into it, so nested scopes take clean deltas
    without losing events from the outer aggregate.  Capture boundaries
    that ship snapshots to a parent process (and merge them explicitly in
    deterministic order) pass ``isolated=True`` to avoid double counting.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = hc
    try:
        yield hc
    finally:
        _ACTIVE = previous
        if previous is not None and not isolated:
            previous.merge_snapshot(hc.snapshot())
