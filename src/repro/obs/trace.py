"""Zero-dependency tracing core: nestable spans with deterministic merging.

The tracer exists to "profile the profiler": every layer of the pipeline —
simulation batches, moment/EM fits, engine scheduling — can open a
:func:`span` around its hot section and the run produces an inspectable
timeline artifact.  Three contracts shape the design:

* **No-op by default.**  With no tracer installed (:func:`current_tracer`
  is ``None``) the module-level :func:`span` helper returns a shared null
  context: no allocation beyond the kwargs dict, no locking, no RNG, and —
  critically — no effect on any rendered experiment table.  Instrumented
  code never needs to know whether telemetry is on.

* **Thread- and process-safety.**  One :class:`Tracer` may be shared by
  many threads: each thread keeps its own span stack (nesting depth) in a
  ``threading.local`` while finished spans append to one lock-guarded
  buffer.  Across *processes* spans cannot be shared, so workers capture
  into their own tracer and ship the finished :class:`SpanRecord` list back
  (they are plain picklable dataclasses); the parent merges them with
  :meth:`Tracer.adopt` — always in a deterministic order keyed by the work's
  identity (experiment id, unit index), never by wall-clock arrival.

* **Exportability.**  Buffered spans serialize to JSON-lines
  (:func:`write_jsonl`) or to the Chrome ``trace_event`` format
  (:func:`write_chrome_trace`), loadable in ``chrome://tracing`` and
  Perfetto.  Chrome events are emitted sorted by ``(pid, tid, ts)`` so the
  timestamp column is monotonic within every track.

Timestamps are :func:`time.perf_counter` offsets relative to the owning
tracer's construction, so they are meaningful within one process and
comparable between spans of the same ``pid``; cross-process alignment is
deliberately not attempted (merge order carries the semantics instead).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from repro.errors import ObsError

__all__ = [
    "TRACE_SCHEMA",
    "SpanRecord",
    "Tracer",
    "current_tracer",
    "tracing",
    "span",
    "instant",
    "chrome_trace_events",
    "write_jsonl",
    "write_chrome_trace",
]

#: Schema tag emitted as the first line of every JSONL trace stream
#: (matching the ``repro.serve/1`` / ``repro.health-alert/1`` convention).
#: Readers accept both versioned and legacy (headerless) streams.
TRACE_SCHEMA = "repro.trace/1"


@dataclass
class SpanRecord:
    """One finished (or instantaneous) span.

    ``start``/``end`` are seconds relative to the owning tracer's epoch;
    ``seq`` is the span's open order within that tracer (re-stamped on
    :meth:`Tracer.adopt` so a merged buffer has one global, deterministic
    order); ``depth`` is the nesting depth at open time.
    """

    name: str
    start: float
    end: float
    depth: int
    seq: int
    pid: int
    tid: int
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "depth": self.depth,
            "seq": self.seq,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }


class _OpenSpan:
    """Handle yielded by :meth:`Tracer.span`; lets the body attach attrs."""

    __slots__ = ("attrs",)

    def __init__(self, attrs: dict) -> None:
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes while the span is open."""
        self.attrs.update(attrs)


class _NullSpan:
    """The do-nothing span: context manager + ``set()`` sink, one instance.

    Stateless, so a single shared instance safely serves every disabled
    ``with span(...)`` site in every thread.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans into an in-memory buffer; see the module docstring."""

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self._pid = os.getpid()
        self._seq = 0
        self._open = 0  # spans opened but not yet closed, across all threads
        self._tids: dict[int, int] = {}  # thread ident -> small stable int

    # -- internals -----------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            if ident not in self._tids:
                self._tids[ident] = len(self._tids)
            return self._tids[ident]

    def _next_seq(self) -> int:
        with self._lock:
            seq = self._seq
            self._seq += 1
            return seq

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[_OpenSpan]:
        """Record one span around the ``with`` body (closed even on error)."""
        stack = self._stack()
        depth = len(stack)
        seq = self._next_seq()
        handle = _OpenSpan(dict(attrs))
        stack.append(name)
        with self._lock:
            self._open += 1
        start = self._now()
        try:
            yield handle
        finally:
            end = self._now()
            stack.pop()
            with self._lock:
                self._open -= 1
            record = SpanRecord(
                name=name,
                start=start,
                end=end,
                depth=depth,
                seq=seq,
                pid=self._pid,
                tid=self._tid(),
                attrs=handle.attrs,
            )
            with self._lock:
                self.spans.append(record)

    def instant(self, name: str, **attrs) -> None:
        """Record a zero-duration span at the current time and depth."""
        now = self._now()
        record = SpanRecord(
            name=name,
            start=now,
            end=now,
            depth=len(self._stack()),
            seq=self._next_seq(),
            pid=self._pid,
            tid=self._tid(),
            attrs=dict(attrs),
        )
        with self._lock:
            self.spans.append(record)

    @property
    def open_spans(self) -> int:
        """Spans currently open (entered but not exited), across all threads."""
        with self._lock:
            return self._open

    # -- merging -------------------------------------------------------------

    def adopt(
        self,
        spans: Sequence[SpanRecord],
        depth_offset: Optional[int] = None,
        **attrs,
    ) -> None:
        """Merge spans captured elsewhere (another process, a sub-tracer).

        Callers MUST invoke ``adopt`` in an order derived from the work's
        identity — request order of experiment ids, index order of units —
        never from completion time; that is the whole determinism story of
        multi-process traces.  Adopted spans keep their own timestamps,
        ``pid`` and ``tid`` (per-track monotonicity survives), are re-stamped
        with fresh ``seq`` values in their original relative order, shifted
        ``depth_offset`` levels deeper (default: the adopting thread's
        current depth), and tagged with ``attrs`` (e.g. ``experiment="f1"``,
        ``unit=3``).
        """
        if depth_offset is None:
            depth_offset = len(self._stack())
        for record in sorted(spans, key=lambda s: s.seq):
            merged = SpanRecord(
                name=record.name,
                start=record.start,
                end=record.end,
                depth=record.depth + depth_offset,
                seq=self._next_seq(),
                pid=record.pid,
                tid=record.tid,
                attrs={**record.attrs, **attrs},
            )
            with self._lock:
                self.spans.append(merged)


# --------------------------------------------------------------------------
# The installed tracer (one per process; workers install their own)
# --------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The tracer :func:`span` feeds, or ``None`` when telemetry is off."""
    return _ACTIVE


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the process-wide active tracer for the body."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def span(name: str, **attrs) -> Union[_NullSpan, "contextmanager"]:
    """Open a span on the active tracer — or do nothing at all.

    This is the helper instrumented code calls; the disabled path is a
    single global read plus the shared :data:`NULL_SPAN`, which is what
    keeps telemetry-off runs indistinguishable from uninstrumented code.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def instant(name: str, **attrs) -> None:
    """Record an instantaneous event on the active tracer (no-op when off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, **attrs)


# --------------------------------------------------------------------------
# Exporters
# --------------------------------------------------------------------------


def _span_buffer(spans: Union[Tracer, Sequence[SpanRecord]]) -> Sequence[SpanRecord]:
    """Resolve an exporter's input to a finished-span buffer.

    Exporters accept either a raw :class:`SpanRecord` sequence or a whole
    :class:`Tracer`.  Handing over a tracer with spans still *open* —
    flushing from inside a ``with span(...)`` body, or from another thread
    mid-span — raises :class:`~repro.errors.ObsError`: those spans only
    record at close, so the export would silently omit in-flight work and
    read as a complete timeline when it is not.
    """
    if isinstance(spans, Tracer):
        open_count = spans.open_spans
        if open_count:
            raise ObsError(
                f"tracer has {open_count} span(s) still open (unbalanced stack "
                "at flush time); close them before exporting, or pass "
                "tracer.spans explicitly to export the finished spans only"
            )
        return spans.spans
    return spans


def write_jsonl(
    path: Union[str, Path],
    spans: Union[Tracer, Sequence[SpanRecord]],
    manifest: Optional[dict] = None,
) -> Path:
    """Write spans as JSON lines, one record per line, in ``seq`` order.

    The first line is a version header (``{"type": "header", "schema":
    "repro.trace/1"}``) so a stream reader knows the layout before the
    first record; readers keep accepting legacy headerless streams.  When
    ``manifest`` is given it becomes the next line (tagged ``"type":
    "manifest"``) so run identity precedes the first span.  ``spans`` may
    be a :class:`Tracer`, in which case it must have no open spans (see
    :func:`_span_buffer`).
    """
    path = Path(path)
    spans = _span_buffer(spans)
    lines = [json.dumps({"schema": TRACE_SCHEMA, "type": "header"}, sort_keys=True)]
    if manifest is not None:
        lines.append(json.dumps({"type": "manifest", **manifest}, sort_keys=True))
    for record in sorted(spans, key=lambda s: s.seq):
        lines.append(json.dumps(record.to_dict(), sort_keys=True))
    path.write_text("\n".join(lines) + "\n")
    return path


def chrome_trace_events(spans: Union[Tracer, Sequence[SpanRecord]]) -> list[dict]:
    """Spans as Chrome ``trace_event`` complete events (``"ph": "X"``).

    Timestamps convert to integer microseconds; events are sorted by
    ``(pid, tid, ts, seq)`` so ``ts`` is monotonically non-decreasing within
    every (pid, tid) track — the property ``chrome://tracing`` and Perfetto
    rely on for stream ingestion.
    """
    spans = _span_buffer(spans)
    events = []
    for record in spans:
        events.append(
            {
                "name": record.name,
                "cat": record.name.split(".", 1)[0],
                "ph": "X",
                "ts": int(round(record.start * 1e6)),
                "dur": max(int(round(record.duration * 1e6)), 0),
                "pid": record.pid,
                "tid": record.tid,
                "args": {**record.attrs, "seq": record.seq, "depth": record.depth},
            }
        )
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], e["args"]["seq"]))
    return events


def write_chrome_trace(
    path: Union[str, Path],
    spans: Union[Tracer, Sequence[SpanRecord]],
    manifest: Optional[dict] = None,
) -> Path:
    """Write the Chrome/Perfetto ``trace_event`` JSON object format."""
    path = Path(path)
    spans = _span_buffer(spans)
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": manifest or {},
    }
    path.write_text(json.dumps(payload, sort_keys=True) + "\n")
    return path
