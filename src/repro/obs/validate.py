"""Structural validation of telemetry artifacts (no external schema deps).

CI's smoke job — and any consumer pulling a ``--trace``/``--metrics``
artifact off a finished run — needs a cheap answer to "is this file the
shape the exporters promise".  The checks here are hand-rolled (the
container has no ``jsonschema``) but express the same contracts a JSON
schema would: required keys with required types, monotonic ``ts`` per
(pid, tid) track in Chrome traces, balanced non-negative spans, histogram
bucket/count length agreement.

Each validator raises :class:`ArtifactError` with a path-qualified message
on first violation and returns a small summary dict on success (the smoke
script prints it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.obs.bench_history import BENCH_SCHEMA
from repro.obs.counters import SNAPSHOT_SCHEMA
from repro.obs.health import ALERT_KINDS, ALERT_SCHEMA, REPORT_SCHEMA, SEVERITIES
from repro.obs.trace import TRACE_SCHEMA

__all__ = [
    "ArtifactError",
    "validate_trace_jsonl",
    "validate_obs_report",
    "validate_chrome_trace",
    "validate_metrics_file",
    "validate_counter_snapshot",
    "validate_serve_stats",
    "validate_health_summary",
    "validate_health_report",
    "validate_alert_log",
    "validate_hw_counters_file",
    "validate_bench_file",
    "require_span_coverage",
]

#: Schema tag the ingestion service stamps on its stats embed
#: (:meth:`repro.serve.service.IngestionService.stats_payload`).  Spelled
#: out here rather than imported so the validators stay dependency-free.
SERVE_SCHEMA = "repro.serve/1"

#: The complete top-level key vocabulary of a ``--metrics`` file.  The
#: validator *rejects* anything else: a typo'd or half-renamed embed key
#: should fail CI's artifact check, not silently ride along unvalidated.
METRICS_FILE_KEYS = ("metrics", "manifest", "hardware_counters", "serve", "health")

#: Span-name prefixes that prove the trace covered a pipeline layer.
LAYER_PREFIXES = {
    "engine": ("engine.", "experiment"),
    "sim": ("sim.",),
    "estimator": ("estimate.",),
}


class ArtifactError(ValueError):
    """A telemetry artifact violated its documented structure."""


def _need(mapping: dict, key: str, types, where: str):
    if key not in mapping:
        raise ArtifactError(f"{where}: missing required key {key!r}")
    value = mapping[key]
    if not isinstance(value, types):
        raise ArtifactError(
            f"{where}: key {key!r} must be {types}, got {type(value).__name__}"
        )
    return value


def _check_span_record(record: dict, where: str) -> None:
    _need(record, "name", str, where)
    start = _need(record, "start", (int, float), where)
    end = _need(record, "end", (int, float), where)
    _need(record, "depth", int, where)
    _need(record, "seq", int, where)
    _need(record, "pid", int, where)
    _need(record, "tid", int, where)
    _need(record, "attrs", dict, where)
    if end < start:
        raise ArtifactError(f"{where}: span ends ({end}) before it starts ({start})")
    if record["depth"] < 0:
        raise ArtifactError(f"{where}: negative depth {record['depth']}")


def validate_trace_jsonl(path: Union[str, Path]) -> dict:
    """Validate a JSONL trace; returns ``{"spans": n, "names": set, ...}``.

    Accepts both the versioned stream (a ``repro.trace/1`` header on the
    first line, optional manifest on the second) and the legacy headerless
    layout (optional manifest on the first line) — old artifacts stay
    checkable forever.
    """
    path = Path(path)
    names: set[str] = set()
    spans = 0
    manifest_lines = 0
    header_lines = 0
    last_seq = -1
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        where = f"{path.name}:{lineno}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"{where}: not valid JSON: {exc}") from exc
        kind = _need(record, "type", str, where)
        if kind == "header":
            if lineno != 1:
                raise ArtifactError(f"{where}: header must be the first line")
            schema = _need(record, "schema", str, where)
            if schema != TRACE_SCHEMA:
                raise ArtifactError(
                    f"{where}: schema {schema!r}, expected {TRACE_SCHEMA!r}"
                )
            header_lines += 1
            continue
        if kind == "manifest":
            if lineno != 1 + header_lines:
                raise ArtifactError(
                    f"{where}: manifest must directly follow the header "
                    "(or open the stream in legacy traces)"
                )
            manifest_lines += 1
            continue
        if kind != "span":
            raise ArtifactError(f"{where}: unknown record type {kind!r}")
        _check_span_record(record, where)
        if record["seq"] <= last_seq:
            raise ArtifactError(
                f"{where}: seq {record['seq']} not increasing (after {last_seq})"
            )
        last_seq = record["seq"]
        names.add(record["name"])
        spans += 1
    if spans == 0:
        raise ArtifactError(f"{path.name}: contains no span records")
    return {
        "spans": spans,
        "names": names,
        "has_manifest": bool(manifest_lines),
        "versioned": bool(header_lines),
    }


def validate_chrome_trace(path: Union[str, Path]) -> dict:
    """Validate a Chrome ``trace_event`` export: shape + per-track monotonic ts."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path.name}: not valid JSON: {exc}") from exc
    events = _need(payload, "traceEvents", list, path.name)
    if not events:
        raise ArtifactError(f"{path.name}: traceEvents is empty")
    names: set[str] = set()
    last_ts: dict[tuple, int] = {}
    for i, event in enumerate(events):
        where = f"{path.name}: traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ArtifactError(f"{where}: event must be an object")
        name = _need(event, "name", str, where)
        _need(event, "ph", str, where)
        ts = _need(event, "ts", int, where)
        dur = _need(event, "dur", int, where)
        pid = _need(event, "pid", int, where)
        tid = _need(event, "tid", int, where)
        if dur < 0:
            raise ArtifactError(f"{where}: negative dur {dur}")
        track = (pid, tid)
        if track in last_ts and ts < last_ts[track]:
            raise ArtifactError(
                f"{where}: ts {ts} decreases within track pid={pid} tid={tid} "
                f"(previous {last_ts[track]})"
            )
        last_ts[track] = ts
        names.add(name)
    return {"spans": len(events), "names": names, "tracks": len(last_ts)}


def validate_metrics_file(path: Union[str, Path]) -> dict:
    """Validate a ``--metrics`` snapshot file (metrics + embedded manifest)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path.name}: not valid JSON: {exc}") from exc
    metrics = _need(payload, "metrics", dict, path.name)
    counters = _need(metrics, "counters", dict, f"{path.name}: metrics")
    _need(metrics, "gauges", dict, f"{path.name}: metrics")
    histograms = _need(metrics, "histograms", dict, f"{path.name}: metrics")
    for name, value in counters.items():
        if not isinstance(value, (int, float)) or value < 0:
            raise ArtifactError(
                f"{path.name}: counter {name!r} must be a non-negative number"
            )
    for name, hist in histograms.items():
        where = f"{path.name}: histogram {name!r}"
        bounds = _need(hist, "bounds", list, where)
        counts = _need(hist, "counts", list, where)
        count = _need(hist, "count", (int, float), where)
        _need(hist, "sum", (int, float), where)
        if len(counts) != len(bounds) + 1:
            raise ArtifactError(
                f"{where}: expected {len(bounds) + 1} buckets, got {len(counts)}"
            )
        if sum(counts) != count:
            raise ArtifactError(f"{where}: bucket counts {sum(counts)} != count {count}")
    unknown = sorted(set(payload) - set(METRICS_FILE_KEYS))
    if unknown:
        raise ArtifactError(
            f"{path.name}: unknown top-level key(s) {', '.join(map(repr, unknown))} "
            f"(known: {', '.join(METRICS_FILE_KEYS)})"
        )
    if "manifest" in payload:
        manifest = payload["manifest"]
        for key in ("schema_version", "repro_version", "seed_scheme", "config", "host"):
            _need(manifest, key, object, f"{path.name}: manifest")
    if "hardware_counters" in payload:
        validate_counter_snapshot(
            payload["hardware_counters"], f"{path.name}: hardware_counters"
        )
    if "serve" in payload:
        validate_serve_stats(payload["serve"], f"{path.name}: serve")
    if "health" in payload:
        _check_health_report(payload["health"], f"{path.name}: health")
    return {
        "counters": len(counters),
        "histograms": len(histograms),
        "has_manifest": "manifest" in payload,
        "has_hw_counters": "hardware_counters" in payload,
        "has_serve": "serve" in payload,
        "has_health": "health" in payload,
    }


def validate_counter_snapshot(snap, where: str) -> dict:
    """Validate one hardware-counter snapshot (see ``repro.obs.counters``).

    Shape: ``{"schema": ..., "totals": {name: int>=0},
    "per_proc": {proc: {field: int>=0}}}``.  Returns a tiny summary.
    """
    if not isinstance(snap, dict):
        raise ArtifactError(f"{where}: snapshot must be an object")
    schema = _need(snap, "schema", str, where)
    if schema != SNAPSHOT_SCHEMA:
        raise ArtifactError(
            f"{where}: schema {schema!r}, expected {SNAPSHOT_SCHEMA!r}"
        )
    def _non_negative_number(value) -> bool:
        # Most counters are ints; energy (µJ) and the timer's quantization
        # error accumulate as floats.  bool is an int subclass — reject it.
        return (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and value >= 0
        )

    totals = _need(snap, "totals", dict, where)
    for name, value in totals.items():
        if not _non_negative_number(value):
            raise ArtifactError(
                f"{where}: counter {name!r} must be a non-negative number, "
                f"got {value!r}"
            )
    per_proc = _need(snap, "per_proc", dict, where)
    for proc, row in per_proc.items():
        if not isinstance(row, dict):
            raise ArtifactError(f"{where}: per_proc[{proc!r}] must be an object")
        for field, value in row.items():
            if not _non_negative_number(value):
                raise ArtifactError(
                    f"{where}: per_proc[{proc!r}].{field} must be a "
                    f"non-negative number, got {value!r}"
                )
    return {"counters": len(totals), "procs": len(per_proc)}


def validate_serve_stats(embed, where: str) -> dict:
    """Validate an ingestion-service stats embed (``--metrics`` ``serve`` key).

    Shape (see :meth:`repro.serve.service.IngestionService.stats_payload`):
    ``{"schema": "repro.serve/1", "workers": int>=1, "uptime_s": float>=0,
    "totals": {...}, "tenants": {tenant: {...}},
    "latency": {pXX_ms: float>=0}}`` plus an optional ``health`` mapping of
    tenant to health summary.  Returns a tiny summary.
    """
    if not isinstance(embed, dict):
        raise ArtifactError(f"{where}: serve stats must be an object")
    schema = _need(embed, "schema", str, where)
    if schema != SERVE_SCHEMA:
        raise ArtifactError(f"{where}: schema {schema!r}, expected {SERVE_SCHEMA!r}")
    workers = _need(embed, "workers", int, where)
    if isinstance(workers, bool) or workers < 1:
        raise ArtifactError(f"{where}: workers must be a positive int, got {workers!r}")
    uptime = _need(embed, "uptime_s", (int, float), where)
    if isinstance(uptime, bool) or uptime < 0:
        raise ArtifactError(
            f"{where}: uptime_s must be a non-negative number, got {uptime!r}"
        )

    def _tallies(mapping: dict, sub_where: str) -> None:
        for name, value in mapping.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                raise ArtifactError(
                    f"{sub_where}: {name!r} must be a non-negative number, got {value!r}"
                )

    totals = _need(embed, "totals", dict, where)
    _tallies(totals, f"{where}: totals")
    for key in ("accepted", "deferred", "rejected"):
        if key not in totals:
            raise ArtifactError(f"{where}: totals is missing {key!r}")
    tenants = _need(embed, "tenants", dict, where)
    for tenant, row in tenants.items():
        if not isinstance(row, dict):
            raise ArtifactError(f"{where}: tenants[{tenant!r}] must be an object")
        _tallies(row, f"{where}: tenants[{tenant!r}]")
    latency = _need(embed, "latency", dict, where)
    _tallies(latency, f"{where}: latency")
    if "health" in embed:
        health = _need(embed, "health", dict, where)
        for tenant, summary in health.items():
            validate_health_summary(summary, f"{where}: health[{tenant!r}]")
    return {
        "workers": workers,
        "tenants": len(tenants),
        "has_health": "health" in embed,
    }


def validate_health_summary(summary, where: str) -> dict:
    """Validate one tenant health summary (a health-report tenant row).

    Shape (see :meth:`repro.obs.health.EstimatorHealthMonitor.summary`):
    numeric gauges plus an optional ``slo`` sub-object; ``coverage`` and
    ``staleness_s`` may be ``null`` (not yet measurable).
    """
    if not isinstance(summary, dict):
        raise ArtifactError(f"{where}: health summary must be an object")

    def _gauge(key, allow_none=False):
        value = _need(summary, key, object, where)
        if value is None and allow_none:
            return value
        if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
            raise ArtifactError(
                f"{where}: {key!r} must be a non-negative number, got {value!r}"
            )
        return value

    _gauge("drift_score")
    _gauge("drift_alarms")
    _gauge("shards_absorbed")
    _gauge("samples_absorbed")
    _gauge("shards_since_rebuild")
    _gauge("staleness_s", allow_none=True)
    coverage = _gauge("coverage", allow_none=True)
    if coverage is not None and coverage > 1.0:
        raise ArtifactError(f"{where}: coverage must lie in [0, 1], got {coverage!r}")
    _gauge("coverage_checks")
    _gauge("alerts")
    procs = _need(summary, "alarmed_procedures", list, where)
    for proc in procs:
        if not isinstance(proc, str):
            raise ArtifactError(
                f"{where}: alarmed_procedures entries must be strings, got {proc!r}"
            )
    if "slo" in summary:
        slo = _need(summary, "slo", dict, where)
        for key, value in slo.items():
            if key == "state":
                if value not in ("ok", "breached"):
                    raise ArtifactError(
                        f"{where}: slo state must be 'ok' or 'breached', got {value!r}"
                    )
                continue
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or value < 0
            ):
                raise ArtifactError(
                    f"{where}: slo.{key} must be a non-negative number, got {value!r}"
                )
    return {"alerts": summary["alerts"], "drift_alarms": summary["drift_alarms"]}


def _check_alert(obj, where: str) -> None:
    if not isinstance(obj, dict):
        raise ArtifactError(f"{where}: alert must be an object")
    schema = _need(obj, "schema", str, where)
    if schema != ALERT_SCHEMA:
        raise ArtifactError(f"{where}: schema {schema!r}, expected {ALERT_SCHEMA!r}")
    kind = _need(obj, "kind", str, where)
    if kind not in ALERT_KINDS:
        raise ArtifactError(
            f"{where}: unknown alert kind {kind!r} (known: {', '.join(ALERT_KINDS)})"
        )
    severity = _need(obj, "severity", str, where)
    if severity not in SEVERITIES:
        raise ArtifactError(
            f"{where}: unknown severity {severity!r} (known: {', '.join(SEVERITIES)})"
        )
    _need(obj, "source", str, where)
    for key in ("value", "threshold"):
        value = _need(obj, key, (int, float), where)
        if isinstance(value, bool):
            raise ArtifactError(f"{where}: {key!r} must be a number, got {value!r}")
    shard = _need(obj, "shard", int, where)
    if shard < -1:
        raise ArtifactError(f"{where}: shard must be >= -1, got {shard}")


def _check_health_report(payload, where: str) -> dict:
    if not isinstance(payload, dict):
        raise ArtifactError(f"{where}: health report must be an object")
    schema = _need(payload, "schema", str, where)
    if schema != REPORT_SCHEMA:
        raise ArtifactError(f"{where}: schema {schema!r}, expected {REPORT_SCHEMA!r}")
    nominal = _need(payload, "nominal_coverage", (int, float), where)
    if isinstance(nominal, bool) or not 0.0 < nominal < 1.0:
        raise ArtifactError(
            f"{where}: nominal_coverage must lie in (0, 1), got {nominal!r}"
        )
    tenants = _need(payload, "tenants", dict, where)
    for tenant, summary in tenants.items():
        validate_health_summary(summary, f"{where}: tenants[{tenant!r}]")
    fleet = _need(payload, "fleet", dict, where)
    n_tenants = _need(fleet, "tenants", int, f"{where}: fleet")
    if n_tenants != len(tenants):
        raise ArtifactError(
            f"{where}: fleet.tenants {n_tenants} != tenant rows {len(tenants)}"
        )
    alerts = _need(payload, "alerts", list, where)
    for i, alert in enumerate(alerts):
        _check_alert(alert, f"{where}: alerts[{i}]")
    fleet_alerts = _need(fleet, "alerts", int, f"{where}: fleet")
    if fleet_alerts != len(alerts):
        raise ArtifactError(
            f"{where}: fleet.alerts {fleet_alerts} != alert records {len(alerts)}"
        )
    return {"tenants": len(tenants), "alerts": len(alerts)}


def validate_health_report(path: Union[str, Path]) -> dict:
    """Validate a fleet health-report JSON file (``repro-health`` artifact)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path.name}: not valid JSON: {exc}") from exc
    return _check_health_report(payload, path.name)


def validate_alert_log(path: Union[str, Path]) -> dict:
    """Validate a JSONL alert log (one :class:`AlertEvent` per line)."""
    path = Path(path)
    alerts = 0
    kinds: set[str] = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            raise ArtifactError(f"{path.name}:{lineno}: blank line in alert log")
        where = f"{path.name}:{lineno}"
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"{where}: not valid JSON: {exc}") from exc
        _check_alert(obj, where)
        kinds.add(obj["kind"])
        alerts += 1
    return {"alerts": alerts, "kinds": kinds}


def validate_hw_counters_file(path: Union[str, Path]) -> dict:
    """Validate a standalone counter-snapshot JSON file."""
    path = Path(path)
    try:
        snap = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path.name}: not valid JSON: {exc}") from exc
    return validate_counter_snapshot(snap, path.name)


def validate_bench_file(path: Union[str, Path]) -> dict:
    """Validate a ``BENCH_<date>.json`` history file (``bench_track`` output)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path.name}: not valid JSON: {exc}") from exc
    schema = _need(payload, "schema", str, path.name)
    if schema != BENCH_SCHEMA:
        raise ArtifactError(
            f"{path.name}: schema {schema!r}, expected {BENCH_SCHEMA!r}"
        )
    records = _need(payload, "records", list, path.name)
    if not records:
        raise ArtifactError(f"{path.name}: history contains no records")
    benchmarks = 0
    snapshots = 0
    for i, record in enumerate(records):
        where = f"{path.name}: records[{i}]"
        if not isinstance(record, dict):
            raise ArtifactError(f"{where}: record must be an object")
        _need(record, "created_utc", str, where)
        _need(record, "git_sha", str, where)
        _need(record, "host", dict, where)
        benches = _need(record, "benchmarks", dict, where)
        for name, stats in benches.items():
            stat_where = f"{where}: benchmark {name!r}"
            if not isinstance(stats, dict):
                raise ArtifactError(f"{stat_where}: stats must be an object")
            for key, value in stats.items():
                if not isinstance(value, (int, float)) or value < 0:
                    raise ArtifactError(
                        f"{stat_where}: stat {key!r} must be a non-negative "
                        f"number, got {value!r}"
                    )
        counters = _need(record, "counters", dict, where)
        for name, snap in counters.items():
            validate_counter_snapshot(snap, f"{where}: counters[{name!r}]")
        benchmarks += len(benches)
        snapshots += len(counters)
    return {"records": len(records), "benchmarks": benchmarks, "snapshots": snapshots}


#: Schema tag on attribution reports (``repro.obs.compare``).  Spelled out
#: here (like ``SERVE_SCHEMA``) so the validators import nothing cyclic.
OBS_REPORT_SCHEMA = "repro.obs-report/1"

#: The report kinds ``repro-obs`` emits.
OBS_REPORT_KINDS = ("runs", "bench", "counters", "aggregate", "critical-path")


def _check_numeric_rows(rows, where: str, key_field: str) -> None:
    if not isinstance(rows, list):
        raise ArtifactError(f"{where}: must be a list")
    for i, row in enumerate(rows):
        row_where = f"{where}[{i}]"
        if not isinstance(row, dict):
            raise ArtifactError(f"{row_where}: row must be an object")
        _need(row, key_field, str, row_where)
        for key, value in row.items():
            if key == key_field:
                continue
            if value is not None and not isinstance(value, (int, float, str)):
                raise ArtifactError(
                    f"{row_where}: field {key!r} must be a number, string or "
                    f"null, got {type(value).__name__}"
                )


def validate_obs_report(path: Union[str, Path]) -> dict:
    """Validate a ``repro.obs-report/1`` attribution/aggregation artifact."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path.name}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ArtifactError(f"{path.name}: report must be an object")
    schema = _need(payload, "schema", str, path.name)
    if schema != OBS_REPORT_SCHEMA:
        raise ArtifactError(
            f"{path.name}: schema {schema!r}, expected {OBS_REPORT_SCHEMA!r}"
        )
    kind = _need(payload, "kind", str, path.name)
    if kind not in OBS_REPORT_KINDS:
        raise ArtifactError(
            f"{path.name}: unknown report kind {kind!r} "
            f"(known: {', '.join(OBS_REPORT_KINDS)})"
        )
    if kind in ("aggregate", "critical-path"):
        rows = _need(payload, "rows", list, path.name)
        _check_numeric_rows(rows, f"{path.name}: rows", "name")
        return {"kind": kind, "rows": len(rows)}
    for key in ("total", "spans", "counters", "metrics", "benchmarks", "notes"):
        _need(payload, key, object, path.name)
    notes = payload["notes"]
    if not isinstance(notes, list) or any(not isinstance(n, str) for n in notes):
        raise ArtifactError(f"{path.name}: notes must be a list of strings")
    sections = 0
    if payload["total"] is not None:
        total = _need(payload, "total", dict, path.name)
        for key in ("before_s", "after_s", "delta_s"):
            _need(total, key, (int, float), f"{path.name}: total")
    if payload["spans"] is not None:
        _check_numeric_rows(payload["spans"], f"{path.name}: spans", "span")
        sections += 1
    if payload["benchmarks"] is not None:
        _check_numeric_rows(
            payload["benchmarks"], f"{path.name}: benchmarks", "benchmark"
        )
        sections += 1
    if payload["counters"] is not None:
        counters = _need(payload, "counters", dict, path.name)
        _check_numeric_rows(
            _need(counters, "movers", list, f"{path.name}: counters"),
            f"{path.name}: counters.movers",
            "counter",
        )
        _check_numeric_rows(
            _need(counters, "groups", list, f"{path.name}: counters"),
            f"{path.name}: counters.groups",
            "group",
        )
        _check_numeric_rows(
            _need(counters, "per_proc", list, f"{path.name}: counters"),
            f"{path.name}: counters.per_proc",
            "procedure",
        )
        sections += 1
    if payload["metrics"] is not None:
        metrics = _need(payload, "metrics", dict, path.name)
        _check_numeric_rows(
            _need(metrics, "counters", list, f"{path.name}: metrics"),
            f"{path.name}: metrics.counters",
            "counter",
        )
        _check_numeric_rows(
            _need(metrics, "histograms", list, f"{path.name}: metrics"),
            f"{path.name}: metrics.histograms",
            "histogram",
        )
        sections += 1
    if sections == 0:
        raise ArtifactError(
            f"{path.name}: report has no attribution sections "
            "(spans, counters, metrics and benchmarks are all null)"
        )
    return {"kind": kind, "sections": sections, "notes": len(notes)}


def require_span_coverage(names: set[str]) -> dict:
    """Assert the span names cover the engine, sim and estimator layers."""
    covered = {}
    for layer, prefixes in LAYER_PREFIXES.items():
        covered[layer] = any(
            name == p or name.startswith(p) for name in names for p in prefixes
        )
    missing = sorted(layer for layer, ok in covered.items() if not ok)
    if missing:
        raise ArtifactError(
            f"trace does not cover layer(s): {', '.join(missing)} "
            f"(saw span names: {', '.join(sorted(names))})"
        )
    return covered
