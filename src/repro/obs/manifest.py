"""The run manifest: enough identity to re-run (or distrust) an artifact.

A trace or metrics file divorced from the run that produced it is noise; the
manifest binds the artifact to the exact configuration — config fingerprint
per experiment, package version, the seed-derivation scheme, host facts —
plus per-experiment rollups (wall-clock, cache state, span counts) so a
reader can triage a run without loading the full span stream.

The manifest rides inside both artifacts: line one of a JSONL trace, the
``otherData`` object of a Chrome trace, and the ``manifest`` key of the
metrics file.
"""

from __future__ import annotations

import datetime
import os
import platform as platform_mod
import sys
from typing import TYPE_CHECKING, Optional, Sequence

import repro

if TYPE_CHECKING:  # import cycle: engine imports obs for instrumentation
    from repro.experiments.engine import ExperimentOutcome

__all__ = ["MANIFEST_SCHEMA_VERSION", "SEED_SCHEME", "build_manifest", "host_facts"]

MANIFEST_SCHEMA_VERSION = 1

#: One-line description of how randomness fans out; a manifest reader should
#: not need to open repro.util.rng to know what "seed 2015" means.
SEED_SCHEME = (
    "numpy SeedSequence: positional spawn for batch streams, "
    "SHA-256-labelled spawn_key derivation for named streams (repro.util.rng)"
)


def host_facts() -> dict:
    """The host identity block shared by manifests and benchmark history.

    Everything here is plain JSON; benchmark records
    (:mod:`repro.obs.bench_history`) embed the same block so a perf
    trajectory can be segmented by machine.
    """
    return {
        "python": sys.version.split()[0],
        "implementation": platform_mod.python_implementation(),
        "platform": platform_mod.platform(),
        "machine": platform_mod.machine(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
    }


def build_manifest(
    config,
    experiment_ids: Sequence[str],
    outcomes: Optional[Sequence["ExperimentOutcome"]] = None,
) -> dict:
    """Assemble the manifest for one engine run.

    ``config`` is the run's :class:`~repro.experiments.common.ExperimentConfig`;
    ``outcomes`` (when the run has finished) contributes the per-experiment
    rollups.  Everything in the result is plain JSON.
    """
    from repro.experiments.engine import config_fingerprint  # deferred: cycle

    manifest = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "repro_version": getattr(repro, "__version__", "unknown"),
        "created_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "seed_scheme": SEED_SCHEME,
        "config": {
            "platform": repr(config.platform),
            "activations": config.activations,
            "seed": config.seed,
            "quick": config.quick,
            "scenario": config.scenario,
        },
        "experiments": {
            exp_id: {"fingerprint": config_fingerprint(exp_id, config)}
            for exp_id in experiment_ids
        },
        "host": host_facts(),
    }
    if outcomes is not None:
        for outcome in outcomes:
            entry = manifest["experiments"].setdefault(outcome.experiment_id, {})
            entry.update(
                {
                    "ok": outcome.ok,
                    "cached": outcome.cached,
                    "wall_seconds": outcome.seconds,
                    "spans": len(outcome.spans),
                    "error": outcome.error,
                }
            )
            hw = getattr(outcome, "hw_counters", None)
            if hw:
                # Rollup only — the full snapshot lives in the metrics
                # artifact; the manifest carries enough to triage.
                entry["hw_counter_events"] = sum(
                    v for v in hw.get("totals", {}).values() if isinstance(v, int)
                )
    return manifest
