"""Estimator-health telemetry: drift detection, CI calibration, alerting.

The spans/metrics stack records what the pipeline *did*; this module watches
whether the estimates are still *good* — the prerequisite telemetry for any
closed-loop re-placement trigger (profiles go stale; somebody has to notice).
Three instruments, all streaming, all deterministic given the shard sequence:

* **Drift detectors.**  :class:`PageHinkley` and :class:`Cusum` run over a
  per-shard *innovation signal*: before each re-fit, the shard's observed
  mean duration per procedure is standardized against the moments the
  *previous* iterate predicted (:func:`residual_signals`).  Under a
  stationary workload that signal is ~N(0, 1)-ish noise; a regime shift in
  the branch probabilities moves procedure durations and the detectors trip.
  Each procedure self-calibrates on its first ``warmup_shards`` signals
  (frozen mean/std baseline), so model-vs-simulator scale mismatch does not
  fire false alarms; after an alarm the baseline re-learns at the new regime
  so every subsequent episode is detected too.

* **CI-calibration audit.**  :class:`CoverageAudit` checks, shard by shard,
  whether the Wald interval ``theta ± half_width`` actually contains the
  simulator's ground-truth branch probability — only for parameters whose
  effective arm count makes the Wald approximation honest.  The running
  empirical coverage is compared against nominal (95% by default) and a
  sustained gap raises a calibration alert.

* **Staleness + SLO monitors.**  Wall-age since the last absorbed shard,
  shards since the last path-family rebuild, and (for the ingestion
  service) p99 ingest latency / backlog depth / deferral rate, each with a
  configurable threshold.

Everything is **observational**: a monitor never feeds back into the
estimator, so attaching one cannot perturb thetas, half-widths, batch
boundaries, or the bit-identical-at-any-worker-count contract.  Alerts are
structured :class:`AlertEvent` records emitted three ways at once — an
``instant`` span on the active tracer, counters/gauges on the active metrics
registry, and the monitor's own buffer (exportable as a JSONL alert log via
:func:`write_alert_log`).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Optional, Sequence, Union

from repro.errors import ObsError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "ALERT_SCHEMA",
    "REPORT_SCHEMA",
    "HealthConfig",
    "PageHinkley",
    "Cusum",
    "CoverageAudit",
    "AlertEvent",
    "EstimatorHealthMonitor",
    "residual_signals",
    "write_alert_log",
    "read_alert_log",
    "build_health_report",
]

#: Schema tag stamped on every serialized alert (one JSONL line each).
ALERT_SCHEMA = "repro.health-alert/1"

#: Schema tag stamped on a fleet health report (``repro-health`` output).
REPORT_SCHEMA = "repro.health-report/1"

#: Alert severities, mild to severe (the vocabulary is closed).
SEVERITIES = ("warning", "critical")

#: Alert kinds the monitor can emit (the vocabulary is closed).
ALERT_KINDS = (
    "drift",
    "coverage",
    "staleness",
    "slo-latency",
    "slo-backlog",
    "slo-deferral",
)


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds for one :class:`EstimatorHealthMonitor`.

    The drift knobs are in *standardized* units (the detectors see signals
    scaled by the warmup baseline's std): ``ph_delta``/``cusum_k`` are the
    drift magnitudes to ignore, ``ph_threshold``/``cusum_h`` the alarm
    levels.  ``None`` disables an individual check (staleness and SLO checks
    default off — they only make sense where a clock or a service exists).
    """

    warmup_shards: int = 8
    ph_delta: float = 0.1
    ph_threshold: float = 28.0
    cusum_k: float = 0.5
    cusum_h: float = 14.0
    min_signal_samples: int = 2
    nominal_coverage: float = 0.95
    coverage_tolerance: float = 0.05
    min_coverage_checks: int = 200
    min_effective_count: float = 25.0
    max_staleness_s: Optional[float] = None
    max_shards_since_rebuild: Optional[int] = None
    slo_p99_ms: Optional[float] = None
    slo_backlog_frac: Optional[float] = 0.8
    slo_deferral_rate: Optional[float] = None
    min_slo_shards: int = 8

    def __post_init__(self) -> None:
        if self.warmup_shards < 1:
            raise ObsError(f"warmup_shards must be >= 1, got {self.warmup_shards}")
        if self.ph_threshold <= 0 or self.cusum_h <= 0:
            raise ObsError("detector thresholds must be positive")
        if self.ph_delta < 0 or self.cusum_k < 0:
            raise ObsError("detector drift allowances must be >= 0")
        if not 0.0 < self.nominal_coverage < 1.0:
            raise ObsError(
                f"nominal_coverage must lie in (0, 1), got {self.nominal_coverage}"
            )
        if not 0.0 < self.coverage_tolerance < 1.0:
            raise ObsError(
                f"coverage_tolerance must lie in (0, 1), got {self.coverage_tolerance}"
            )
        if self.min_coverage_checks < 1:
            raise ObsError(
                f"min_coverage_checks must be >= 1, got {self.min_coverage_checks}"
            )
        if self.min_effective_count <= 0:
            raise ObsError(
                f"min_effective_count must be positive, got {self.min_effective_count}"
            )
        for name, value in (
            ("max_staleness_s", self.max_staleness_s),
            ("slo_p99_ms", self.slo_p99_ms),
            ("slo_backlog_frac", self.slo_backlog_frac),
            ("slo_deferral_rate", self.slo_deferral_rate),
        ):
            if value is not None and value <= 0:
                raise ObsError(f"{name} must be positive or None, got {value}")
        if (
            self.max_shards_since_rebuild is not None
            and self.max_shards_since_rebuild < 1
        ):
            raise ObsError(
                f"max_shards_since_rebuild must be >= 1 or None, "
                f"got {self.max_shards_since_rebuild}"
            )


# --------------------------------------------------------------------------
# Streaming drift detectors
# --------------------------------------------------------------------------


class PageHinkley:
    """Two-sided Page–Hinkley test over a scalar stream.

    Classic two-accumulator form: the *up* test tracks the cumulative
    deviation from the running mean minus the allowance ``delta`` against
    its running minimum, the *down* test the deviation plus ``delta``
    against its running maximum.  Under stationarity each accumulator
    drifts *away* from its own extremum's alarm side at rate ``delta``, so
    the statistic stays bounded on arbitrarily long quiet streams; a
    sustained shift in either direction walks one gap past ``threshold``.
    After an alarm the statistic resets so the next episode is detected
    afresh.
    """

    __slots__ = ("delta", "threshold", "_n", "_mean", "_up", "_up_min", "_down", "_down_max")

    def __init__(self, delta: float = 0.1, threshold: float = 28.0) -> None:
        if threshold <= 0:
            raise ObsError(f"threshold must be positive, got {threshold}")
        if delta < 0:
            raise ObsError(f"delta must be >= 0, got {delta}")
        self.delta = delta
        self.threshold = threshold
        self.reset()

    def reset(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._up = 0.0
        self._up_min = 0.0
        self._down = 0.0
        self._down_max = 0.0

    @property
    def statistic(self) -> float:
        """The current two-sided PH statistic (max of up/down tests)."""
        return max(self._up - self._up_min, self._down_max - self._down)

    @property
    def score(self) -> float:
        """``statistic / threshold`` — >= 1.0 means the alarm level."""
        return self.statistic / self.threshold

    def update(self, x: float) -> bool:
        """Feed one value; True means *alarm* (the detector has reset)."""
        self._n += 1
        self._mean += (x - self._mean) / self._n
        deviation = x - self._mean
        self._up += deviation - self.delta
        self._up_min = min(self._up_min, self._up)
        self._down += deviation + self.delta
        self._down_max = max(self._down_max, self._down)
        if self.statistic > self.threshold:
            self.reset()
            return True
        return False


class Cusum:
    """Two-sided CUSUM over a (roughly standardized) scalar stream.

    Classic tabular form: ``S+ = max(0, S+ + x - k)`` catches upward shifts,
    ``S- = max(0, S- - x - k)`` downward ones; either exceeding ``h`` is an
    alarm (and resets both accumulators).  With ~N(0, 1) inputs, ``k`` is
    half the shift (in sigmas) worth detecting and ``h`` sets the
    false-alarm/delay trade-off.
    """

    __slots__ = ("k", "h", "_pos", "_neg")

    def __init__(self, k: float = 0.5, h: float = 14.0) -> None:
        if h <= 0:
            raise ObsError(f"h must be positive, got {h}")
        if k < 0:
            raise ObsError(f"k must be >= 0, got {k}")
        self.k = k
        self.h = h
        self.reset()

    def reset(self) -> None:
        self._pos = 0.0
        self._neg = 0.0

    @property
    def statistic(self) -> float:
        return max(self._pos, self._neg)

    @property
    def score(self) -> float:
        return self.statistic / self.h

    def update(self, x: float) -> bool:
        """Feed one value; True means *alarm* (the detector has reset)."""
        self._pos = max(0.0, self._pos + x - self.k)
        self._neg = max(0.0, self._neg - x - self.k)
        if self.statistic > self.h:
            self.reset()
            return True
        return False


def residual_signals(
    moments: Mapping[str, object],
    samples: Mapping[str, object],
    min_samples: int = 2,
) -> dict[str, float]:
    """Per-procedure standardized innovations for one shard.

    ``moments`` maps procedure name to anything with ``mean`` and
    ``variance`` attributes (the previous iterate's predicted
    :class:`~repro.markov.moments.RewardMoments`); ``samples`` maps name to
    the shard's raw duration array.  The signal is the z-score of the shard
    mean under the prediction: ``(x̄ - mu) / (sigma / sqrt(n))``.  Procedures
    without a prediction, or with fewer than ``min_samples`` observations
    (one duration says nothing about a mean shift), are skipped.
    """
    signals: dict[str, float] = {}
    for name in sorted(samples):
        predicted = moments.get(name)
        if predicted is None:
            continue
        xs = samples[name]
        n = len(xs)
        if n < min_samples:
            continue
        sigma = math.sqrt(max(float(predicted.variance), 1e-12))
        mean = sum(float(x) for x in xs) / n
        signals[name] = (mean - float(predicted.mean)) / (sigma / math.sqrt(n))
    return signals


class _ProcDrift:
    """One procedure's self-calibrating detector pair.

    The first ``warmup_shards`` signals fit a frozen mean/std baseline
    (Welford); subsequent signals are standardized against it and fed to
    both detectors.  An alarm resets the detectors *and* the baseline — the
    stream re-calibrates at the new regime, so a second drift episode is
    detected relative to the first's level, not the original one.
    """

    __slots__ = ("config", "_count", "_mean", "_m2", "_mu0", "_sd0", "ph", "cusum", "alarms")

    def __init__(self, config: HealthConfig) -> None:
        self.config = config
        self.ph = PageHinkley(config.ph_delta, config.ph_threshold)
        self.cusum = Cusum(config.cusum_k, config.cusum_h)
        self.alarms = 0
        self._restart()

    def _restart(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._mu0: Optional[float] = None
        self._sd0 = 1.0
        self.ph.reset()
        self.cusum.reset()

    @property
    def score(self) -> float:
        return max(self.ph.score, self.cusum.score)

    @property
    def warmed_up(self) -> bool:
        return self._mu0 is not None

    def update(self, x: float) -> Optional[str]:
        """Feed one raw signal; returns the alarming detector name, if any."""
        if self._mu0 is None:
            self._count += 1
            delta = x - self._mean
            self._mean += delta / self._count
            self._m2 += delta * (x - self._mean)
            if self._count >= self.config.warmup_shards:
                self._mu0 = self._mean
                variance = self._m2 / max(self._count - 1, 1)
                # The raw signal is already ~unit-scale by construction; the
                # baseline only removes bias and *extra* dispersion.  A short
                # warmup under-estimates spread, so never let it tighten the
                # scale below the signal's nominal N(0, 1): floor the std at 1.
                self._sd0 = max(math.sqrt(max(variance, 0.0)), 1.0)
            return None
        z = (x - self._mu0) / self._sd0
        fired = []
        if self.ph.update(z):
            fired.append("page-hinkley")
        if self.cusum.update(z):
            fired.append("cusum")
        if fired:
            self.alarms += 1
            self._restart()
            return "+".join(fired)
        return None


# --------------------------------------------------------------------------
# CI-calibration audit
# --------------------------------------------------------------------------


class CoverageAudit:
    """Running empirical coverage of Wald intervals against ground truth.

    One ``(procedure, parameter, shard)`` triple is one check: did
    ``|theta - truth| <= half_width`` hold?  Only parameters whose effective
    arm count reaches ``min_effective_count`` are checked — below that the
    Wald interval is not an honest 95% interval and auditing it would
    measure the approximation, not the calibration.
    """

    def __init__(self, min_effective_count: float = 25.0) -> None:
        if min_effective_count <= 0:
            raise ObsError(
                f"min_effective_count must be positive, got {min_effective_count}"
            )
        self.min_effective_count = min_effective_count
        self._covered: dict[str, int] = {}
        self._total: dict[str, int] = {}

    def record(
        self,
        proc: str,
        thetas: Sequence[float],
        half_widths: Sequence[float],
        truth: Sequence[float],
        arm_counts: Optional[Sequence[float]] = None,
    ) -> int:
        """Audit one procedure's interval vector; returns checks recorded."""
        if len(thetas) != len(truth) or len(thetas) != len(half_widths):
            raise ObsError(
                f"coverage audit for {proc!r}: theta/half-width/truth lengths "
                f"disagree ({len(thetas)}/{len(half_widths)}/{len(truth)})"
            )
        recorded = 0
        for i, theta in enumerate(thetas):
            if arm_counts is not None and (
                i >= len(arm_counts) or arm_counts[i] < self.min_effective_count
            ):
                continue
            if arm_counts is None and half_widths[i] >= 0.5:
                continue  # the honest-ignorance width; nothing to audit
            covered = abs(float(theta) - float(truth[i])) <= float(half_widths[i])
            self._total[proc] = self._total.get(proc, 0) + 1
            if covered:
                self._covered[proc] = self._covered.get(proc, 0) + 1
            recorded += 1
        return recorded

    @property
    def checks(self) -> int:
        return sum(self._total.values())

    def coverage(self) -> Optional[float]:
        """Overall empirical coverage, or None before any check."""
        total = self.checks
        if total == 0:
            return None
        return sum(self._covered.values()) / total

    def per_procedure(self) -> dict[str, dict[str, Union[int, float]]]:
        """Per-procedure ``{covered, total, coverage}`` rows (sorted)."""
        rows = {}
        for proc in sorted(self._total):
            total = self._total[proc]
            covered = self._covered.get(proc, 0)
            rows[proc] = {
                "covered": covered,
                "total": total,
                "coverage": covered / total,
            }
        return rows

    def merge(self, other: "CoverageAudit") -> None:
        """Fold another audit in (fleet rollup): counts add."""
        for proc, total in other._total.items():
            self._total[proc] = self._total.get(proc, 0) + total
        for proc, covered in other._covered.items():
            self._covered[proc] = self._covered.get(proc, 0) + covered


# --------------------------------------------------------------------------
# Alerts
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AlertEvent:
    """One threshold crossing, structured for machines.

    ``kind`` comes from :data:`ALERT_KINDS`; ``source`` names the stream
    (tenant key, or ``"estimator"`` for a bare monitor); ``value`` crossed
    ``threshold``; ``shard`` is the trajectory index at emission (-1 when
    the alert is not tied to a shard, e.g. staleness).
    """

    kind: str
    severity: str
    source: str
    value: float
    threshold: float
    shard: int = -1
    procedure: Optional[str] = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ALERT_KINDS:
            raise ObsError(f"unknown alert kind {self.kind!r} (known: {ALERT_KINDS})")
        if self.severity not in SEVERITIES:
            raise ObsError(
                f"unknown severity {self.severity!r} (known: {SEVERITIES})"
            )

    def to_json(self) -> dict:
        payload: dict = {
            "schema": ALERT_SCHEMA,
            "kind": self.kind,
            "severity": self.severity,
            "source": self.source,
            "value": self.value,
            "threshold": self.threshold,
            "shard": self.shard,
        }
        if self.procedure is not None:
            payload["procedure"] = self.procedure
        if self.detail:
            payload["detail"] = self.detail
        return payload


def write_alert_log(path: Union[str, Path], events: Sequence[AlertEvent]) -> Path:
    """Write alerts as JSON lines, one event per line, in emission order."""
    path = Path(path)
    lines = [json.dumps(event.to_json(), sort_keys=True) for event in events]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def read_alert_log(path: Union[str, Path]) -> list[AlertEvent]:
    """Parse a JSONL alert log back into :class:`AlertEvent` records."""
    path = Path(path)
    events = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"{path.name}:{lineno}: not valid JSON: {exc}") from exc
        if obj.get("schema") != ALERT_SCHEMA:
            raise ObsError(
                f"{path.name}:{lineno}: schema {obj.get('schema')!r}, "
                f"expected {ALERT_SCHEMA!r}"
            )
        try:
            events.append(
                AlertEvent(
                    kind=obj["kind"],
                    severity=obj["severity"],
                    source=obj["source"],
                    value=float(obj["value"]),
                    threshold=float(obj["threshold"]),
                    shard=int(obj.get("shard", -1)),
                    procedure=obj.get("procedure"),
                    detail=obj.get("detail", ""),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObsError(f"{path.name}:{lineno}: malformed alert: {exc}") from exc
    return events


# --------------------------------------------------------------------------
# The monitor
# --------------------------------------------------------------------------


class EstimatorHealthMonitor:
    """Continuous quality watch over one estimator stream.

    Attach via :meth:`repro.core.online.OnlineEstimator.attach_health`; the
    estimator then calls :meth:`observe_absorb` after every trajectory
    point.  The monitor is **purely observational** — it never mutates the
    estimator — and it is *not* part of checkpoints: after a
    checkpoint/resume handoff, re-attach the same monitor to the resumed
    estimator to keep its detector state (the ingestion service does this
    on rebalance).

    ``truth`` (per-procedure ground-truth branch probabilities, when the
    workload is simulated and they are known) enables the coverage audit;
    without it the audit stays empty.  ``sink`` is an optional callable
    receiving every :class:`AlertEvent` as it fires.
    """

    def __init__(
        self,
        config: Optional[HealthConfig] = None,
        source: str = "estimator",
        truth: Optional[Mapping[str, Sequence[float]]] = None,
        clock: Callable[[], float] = time.monotonic,
        sink: Optional[Callable[[AlertEvent], None]] = None,
    ) -> None:
        self.config = config or HealthConfig()
        self.source = source
        self.truth = (
            {name: [float(x) for x in xs] for name, xs in truth.items()}
            if truth is not None
            else None
        )
        self._clock = clock
        self._sink = sink
        self.audit = CoverageAudit(self.config.min_effective_count)
        self._drift: dict[str, _ProcDrift] = {}
        self._alerts: list[AlertEvent] = []
        self._shards = 0
        self._samples = 0
        self._last_absorb_t: Optional[float] = None
        self._shards_since_rebuild = 0
        self._coverage_breached = False
        self._stale = False

    # -- observation --------------------------------------------------------

    def observe_absorb(
        self,
        point,
        signals: Mapping[str, float],
        arm_counts: Optional[Mapping[str, Sequence[float]]] = None,
    ) -> list[AlertEvent]:
        """Fold one trajectory point in; returns alerts this shard raised.

        ``point`` is the :class:`~repro.core.online.ShardEstimate` just
        appended; ``signals`` the pre-refit innovations from
        :func:`residual_signals`; ``arm_counts`` the EM effective arm counts
        behind the point's half-widths (gates the coverage audit).
        """
        fired: list[AlertEvent] = []
        self._shards += 1
        self._samples = point.total_samples
        self._last_absorb_t = self._clock()
        self._stale = False
        if point.families_rebuilt > 0:
            self._shards_since_rebuild = 0
        else:
            self._shards_since_rebuild += 1
        for proc in sorted(signals):
            state = self._drift.get(proc)
            if state is None:
                state = self._drift[proc] = _ProcDrift(self.config)
            detector = state.update(float(signals[proc]))
            if detector is not None:
                fired.append(
                    self._emit(
                        kind="drift",
                        severity="critical",
                        value=float(signals[proc]),
                        threshold=1.0,
                        shard=point.shard_index,
                        procedure=proc,
                        detail=f"{detector} alarm #{state.alarms}",
                    )
                )
        if self.truth is not None:
            for proc, truth in sorted(self.truth.items()):
                theta = point.thetas.get(proc)
                hw = point.half_widths.get(proc)
                if theta is None or hw is None or len(theta) != len(truth):
                    continue
                counts = arm_counts.get(proc) if arm_counts is not None else None
                self.audit.record(proc, theta, hw, truth, counts)
            fired.extend(self._check_coverage(point.shard_index))
        _metrics.set_gauge(f"health.{self.source}.drift_score", self.drift_score)
        _metrics.set_gauge(
            f"health.{self.source}.shards_since_rebuild", self._shards_since_rebuild
        )
        coverage = self.audit.coverage()
        if coverage is not None:
            _metrics.set_gauge(f"health.{self.source}.coverage", coverage)
        return fired

    def _check_coverage(self, shard: int) -> list[AlertEvent]:
        coverage = self.audit.coverage()
        if coverage is None or self.audit.checks < self.config.min_coverage_checks:
            return []
        gap = abs(coverage - self.config.nominal_coverage)
        breached = gap > self.config.coverage_tolerance
        if breached and not self._coverage_breached:
            self._coverage_breached = True
            return [
                self._emit(
                    kind="coverage",
                    severity="warning",
                    value=coverage,
                    threshold=self.config.nominal_coverage,
                    shard=shard,
                    detail=(
                        f"empirical coverage {coverage:.3f} off nominal "
                        f"{self.config.nominal_coverage:.2f} by {gap:.3f} "
                        f"(> {self.config.coverage_tolerance:.3f}, "
                        f"{self.audit.checks} checks)"
                    ),
                )
            ]
        if not breached:
            self._coverage_breached = False
        return []

    def check_staleness(self, now: Optional[float] = None) -> list[AlertEvent]:
        """Evaluate the age thresholds; edge-triggered staleness alerts."""
        fired: list[AlertEvent] = []
        limit = self.config.max_staleness_s
        age = self.staleness_s(now)
        shard_limit = self.config.max_shards_since_rebuild
        stale_now = (limit is not None and age is not None and age > limit) or (
            shard_limit is not None and self._shards_since_rebuild > shard_limit
        )
        if stale_now and not self._stale:
            self._stale = True
            if limit is not None and age is not None and age > limit:
                fired.append(
                    self._emit(
                        kind="staleness",
                        severity="warning",
                        value=age,
                        threshold=limit,
                        detail=f"no shard absorbed for {age:.1f}s",
                    )
                )
            else:
                fired.append(
                    self._emit(
                        kind="staleness",
                        severity="warning",
                        value=float(self._shards_since_rebuild),
                        threshold=float(shard_limit),
                        detail=(
                            f"{self._shards_since_rebuild} shards since the "
                            "last path-family rebuild"
                        ),
                    )
                )
        elif not stale_now:
            self._stale = False
        return fired

    def emit(
        self,
        kind: str,
        severity: str,
        value: float,
        threshold: float,
        shard: int = -1,
        procedure: Optional[str] = None,
        detail: str = "",
    ) -> AlertEvent:
        """Emit one externally evaluated alert (the service's SLO checks)."""
        return self._emit(kind, severity, value, threshold, shard, procedure, detail)

    def _emit(
        self,
        kind: str,
        severity: str,
        value: float,
        threshold: float,
        shard: int = -1,
        procedure: Optional[str] = None,
        detail: str = "",
    ) -> AlertEvent:
        event = AlertEvent(
            kind=kind,
            severity=severity,
            source=self.source,
            value=float(value),
            threshold=float(threshold),
            shard=shard,
            procedure=procedure,
            detail=detail,
        )
        self._alerts.append(event)
        _trace.instant(f"health.alert.{kind}", **event.to_json())
        _metrics.inc("health.alerts")
        _metrics.inc(f"health.alerts.{kind}")
        if self._sink is not None:
            self._sink(event)
        return event

    # -- state --------------------------------------------------------------

    @property
    def alerts(self) -> tuple[AlertEvent, ...]:
        return tuple(self._alerts)

    @property
    def drift_score(self) -> float:
        """Max detector statistic over procedures, scaled so 1.0 = alarm."""
        if not self._drift:
            return 0.0
        return max(state.score for state in self._drift.values())

    @property
    def drift_alarms(self) -> int:
        return sum(state.alarms for state in self._drift.values())

    @property
    def alarmed_procedures(self) -> tuple[str, ...]:
        return tuple(sorted(p for p, s in self._drift.items() if s.alarms))

    @property
    def shards_since_rebuild(self) -> int:
        return self._shards_since_rebuild

    def staleness_s(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds since the last absorbed shard (None before the first)."""
        if self._last_absorb_t is None:
            return None
        return max(0.0, (self._clock() if now is None else now) - self._last_absorb_t)

    def summary(self, now: Optional[float] = None) -> dict:
        """JSON-able health snapshot (one tenant row of a health report)."""
        coverage = self.audit.coverage()
        age = self.staleness_s(now)
        return {
            "drift_score": round(self.drift_score, 6),
            "drift_alarms": self.drift_alarms,
            "alarmed_procedures": list(self.alarmed_procedures),
            "shards_absorbed": self._shards,
            "samples_absorbed": self._samples,
            "shards_since_rebuild": self._shards_since_rebuild,
            "staleness_s": None if age is None else round(age, 6),
            "coverage": None if coverage is None else round(coverage, 6),
            "coverage_checks": self.audit.checks,
            "alerts": len(self._alerts),
        }


# --------------------------------------------------------------------------
# Fleet health report
# --------------------------------------------------------------------------


def build_health_report(
    tenants: Mapping[str, dict],
    alerts: Sequence[AlertEvent] = (),
    nominal_coverage: float = 0.95,
) -> dict:
    """Assemble the fleet health report (``repro-health``'s artifact).

    ``tenants`` maps tenant key to a :meth:`EstimatorHealthMonitor.summary`
    dict (optionally extended with an ``slo`` sub-object by the service);
    the fleet rollup aggregates drift/alert totals and check-weighted
    coverage across tenants.
    """
    rows = {name: dict(summary) for name, summary in sorted(tenants.items())}
    covered_checks = 0
    weighted = 0.0
    worst: Optional[float] = None
    for summary in rows.values():
        coverage = summary.get("coverage")
        checks = summary.get("coverage_checks", 0)
        if coverage is not None and checks:
            weighted += coverage * checks
            covered_checks += checks
            worst = coverage if worst is None else min(worst, coverage)
    fleet = {
        "tenants": len(rows),
        "max_drift_score": max(
            (s.get("drift_score", 0.0) for s in rows.values()), default=0.0
        ),
        "drift_alarms": sum(s.get("drift_alarms", 0) for s in rows.values()),
        "alerts": len(alerts),
        "coverage": (weighted / covered_checks) if covered_checks else None,
        "worst_coverage": worst,
        "coverage_checks": covered_checks,
    }
    return {
        "schema": REPORT_SCHEMA,
        "nominal_coverage": nominal_coverage,
        "tenants": rows,
        "fleet": fleet,
        "alerts": [event.to_json() for event in alerts],
    }
