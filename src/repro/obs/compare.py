"""Regression attribution: explain *why* run B is slower than run A.

``bench_track.py --check`` can flag "F4 got 23% slower"; this module turns
that bare threshold breach into a ranked, explainable story.  Given two
runs — span traces, metrics snapshots with hardware-counter embeds, or two
bench-history records — it produces one deterministic attribution report
(schema ``repro.obs-report/1``):

* **Span attribution** — per-span-name exclusive (self) wall-clock deltas,
  ranked by contribution to the total regression, so "the run grew 2.3s"
  localizes to "``sim.vector_run`` cohort regrouping grew 2.1×".
* **Counter attribution** — per-counter deltas (cycles by instruction
  class, mispredicts, flash fetches, radio µJ) with relative movement and
  a group rollup naming the responsible subsystem, plus per-procedure
  exclusive-cycle attribution from the interpreter's push/pop brackets.
* **Metrics attribution** — registry counter deltas and histogram mean
  shifts (the "EM iteration histogram shifted right" drill-down).
* **Benchmark attribution** — per-benchmark median deltas between two
  history records, ranked by contribution, with the records' counter
  snapshots merged and diffed alongside.

Reports are **byte-identical for identical inputs**: no timestamps, no
environment reads, all orderings total (primary key descending, name
ascending tie-break), rendered through ``json.dumps(sort_keys=True)``.
Loading may be parallelized (the CLI's ``--jobs``); analysis itself is
single-pass and order-free.
"""

from __future__ import annotations

import json
from typing import Mapping, Optional, Sequence

from repro.errors import ObsError
from repro.obs.counters import (
    SNAPSHOT_SCHEMA,
    empty_snapshot,
    merge_snapshots,
    snapshot_deltas,
)
from repro.obs.query import RunBundle, TraceForest, aggregate

__all__ = [
    "OBS_REPORT_SCHEMA",
    "span_attribution",
    "counter_attribution",
    "metrics_attribution",
    "compare_runs",
    "compare_bench_records",
    "explain_history",
    "format_report",
    "report_json",
]

#: Schema tag on every attribution report.
OBS_REPORT_SCHEMA = "repro.obs-report/1"


def _share(delta: float, total_delta: float) -> Optional[float]:
    return (delta / total_delta) if total_delta else None


def span_attribution(
    before: TraceForest, after: TraceForest, top: Optional[int] = None
) -> list[dict]:
    """Per-span-name self-time deltas, ranked by contribution to the total.

    Rows carry both exclusive (the ranking key — self time is what a span
    *itself* got slower by) and inclusive deltas, call counts on both
    sides, and ``share``: this span's fraction of the total self-time
    movement.  Ordering: descending delta (regressions first), then name.
    """
    rows_a = {r["name"]: r for r in aggregate(before)}
    rows_b = {r["name"]: r for r in aggregate(after)}
    total_delta = sum(r["exclusive_s"] for r in rows_b.values()) - sum(
        r["exclusive_s"] for r in rows_a.values()
    )
    out = []
    for name in rows_a.keys() | rows_b.keys():
        a, b = rows_a.get(name), rows_b.get(name)
        self_a = a["exclusive_s"] if a else 0.0
        self_b = b["exclusive_s"] if b else 0.0
        delta = self_b - self_a
        out.append(
            {
                "span": name,
                "before_self_s": self_a,
                "after_self_s": self_b,
                "delta_s": delta,
                "ratio": (self_b / self_a) if self_a > 0 else None,
                "share": _share(delta, total_delta),
                "before_count": a["count"] if a else 0,
                "after_count": b["count"] if b else 0,
            }
        )
    out.sort(key=lambda r: (-r["delta_s"], r["span"]))
    return out[:top] if top is not None else out


def counter_attribution(
    before: Optional[Mapping],
    after: Optional[Mapping],
    top: Optional[int] = None,
) -> Optional[dict]:
    """Counter movers, group rollup and per-procedure cycle attribution.

    ``None`` when either side lacks a hardware-counter snapshot (an
    attribution report never invents data).  The group rollup ranks
    counter *groups* (``cycles``, ``branch``, ``flash``, ``radio``, ...)
    by their largest mover, which is the "name the responsible counter
    group" half of the explain contract.
    """
    if before is None or after is None:
        return None
    movers = snapshot_deltas(before, after)
    groups: dict[str, dict] = {}
    for row in movers:
        entry = groups.setdefault(
            row["group"],
            {
                "group": row["group"],
                "movers": 0,
                "top_counter": row["counter"],
                "top_delta": row["delta"],
                "top_relative": row["relative"],
            },
        )
        entry["movers"] += 1
        if abs(row["delta"]) > abs(entry["top_delta"]):
            entry.update(
                top_counter=row["counter"],
                top_delta=row["delta"],
                top_relative=row["relative"],
            )
    group_rows = sorted(
        groups.values(), key=lambda g: (-abs(g["top_delta"]), g["group"])
    )

    per_proc = []
    b_procs = before.get("per_proc", {})
    a_procs = after.get("per_proc", {})
    for proc in b_procs.keys() | a_procs.keys():
        cycles_b = b_procs.get(proc, {}).get("cycles", 0)
        cycles_a = a_procs.get(proc, {}).get("cycles", 0)
        if cycles_a == cycles_b:
            continue
        per_proc.append(
            {
                "procedure": proc,
                "before_cycles": cycles_b,
                "after_cycles": cycles_a,
                "delta_cycles": cycles_a - cycles_b,
                "relative": ((cycles_a - cycles_b) / cycles_b) if cycles_b else None,
            }
        )
    per_proc.sort(key=lambda r: (-abs(r["delta_cycles"]), r["procedure"]))
    return {
        "movers": movers[:top] if top is not None else movers,
        "groups": group_rows,
        "per_proc": per_proc[:top] if top is not None else per_proc,
    }


def metrics_attribution(
    before: Optional[Mapping], after: Optional[Mapping], top: Optional[int] = None
) -> Optional[dict]:
    """Registry-level deltas: counter movement and histogram mean shifts.

    The histogram rows are the drill-down from "this span grew" to "the EM
    iteration histogram shifted": a mean moving right at similar count is
    more work per fit, a count moving at similar mean is more fits.
    """
    if before is None or after is None:
        return None
    counter_rows = []
    b_counters = before.get("counters", {})
    a_counters = after.get("counters", {})
    for name in b_counters.keys() | a_counters.keys():
        b_val, a_val = b_counters.get(name, 0), a_counters.get(name, 0)
        if a_val == b_val:
            continue
        counter_rows.append(
            {
                "counter": name,
                "before": b_val,
                "after": a_val,
                "delta": a_val - b_val,
                "relative": ((a_val - b_val) / b_val) if b_val else None,
            }
        )
    counter_rows.sort(key=lambda r: (-abs(r["delta"]), r["counter"]))

    hist_rows = []
    b_hists = before.get("histograms", {})
    a_hists = after.get("histograms", {})
    for name in sorted(b_hists.keys() & a_hists.keys()):
        hb, ha = b_hists[name], a_hists[name]
        mean_b = (hb["sum"] / hb["count"]) if hb.get("count") else 0.0
        mean_a = (ha["sum"] / ha["count"]) if ha.get("count") else 0.0
        if mean_a == mean_b and hb.get("count") == ha.get("count"):
            continue
        hist_rows.append(
            {
                "histogram": name,
                "before_mean": mean_b,
                "after_mean": mean_a,
                "delta_mean": mean_a - mean_b,
                "before_count": hb.get("count", 0),
                "after_count": ha.get("count", 0),
            }
        )
    hist_rows.sort(key=lambda r: (-abs(r["delta_mean"]), r["histogram"]))
    return {
        "counters": counter_rows[:top] if top is not None else counter_rows,
        "histograms": hist_rows[:top] if top is not None else hist_rows,
    }


def _total_block(before_s: float, after_s: float) -> dict:
    return {
        "before_s": before_s,
        "after_s": after_s,
        "delta_s": after_s - before_s,
        "relative": ((after_s - before_s) / before_s) if before_s > 0 else None,
    }


def compare_runs(
    before: RunBundle, after: RunBundle, top: Optional[int] = None
) -> dict:
    """Attribution report for two joined runs (trace ± metrics ± counters).

    Sections appear only when both sides carry the data (spans need both
    traces; counters need both snapshots).  A config-fingerprint mismatch
    between the runs is *noted*, not fatal: comparing across commits or
    configs is the normal regression workflow, the reader just has to know
    the baseline differs.
    """
    notes: list[str] = []
    prints_a, prints_b = before.fingerprints(), after.fingerprints()
    for exp_id in sorted(prints_a.keys() & prints_b.keys()):
        if prints_a[exp_id] != prints_b[exp_id]:
            notes.append(
                f"config fingerprint of {exp_id!r} differs between runs; "
                "the workloads are not identical"
            )
    spans = None
    total = None
    if before.forest is not None and after.forest is not None:
        spans = span_attribution(before.forest, after.forest, top=top)
        total = _total_block(
            before.forest.total_inclusive, after.forest.total_inclusive
        )
    counters = counter_attribution(before.hw_counters, after.hw_counters, top=top)
    metrics = metrics_attribution(before.metrics, after.metrics, top=top)
    if spans is None and counters is None and metrics is None:
        raise ObsError(
            "nothing to compare: the two runs share no artifact kind "
            "(need traces on both sides, or counter/metrics snapshots on both)"
        )
    return {
        "schema": OBS_REPORT_SCHEMA,
        "kind": "runs",
        "total": total,
        "spans": spans,
        "counters": counters,
        "metrics": metrics,
        "benchmarks": None,
        "notes": notes,
    }


# --------------------------------------------------------------------------
# Bench-history attribution
# --------------------------------------------------------------------------


def _merged_counters(record: Mapping, names: Sequence[str]) -> Optional[Mapping]:
    snaps = record.get("counters") or {}
    merged = empty_snapshot()
    found = False
    for name in names:
        snap = snaps.get(name)
        if isinstance(snap, Mapping) and snap.get("schema") == SNAPSHOT_SCHEMA:
            merged = merge_snapshots(merged, snap)
            found = True
    return merged if found else None


def compare_bench_records(
    before: Mapping, after: Mapping, top: Optional[int] = None
) -> dict:
    """Attribution report for two ``BENCH_<date>.json`` history records.

    Per-benchmark median deltas ranked by contribution to the records'
    total median movement; counter snapshots are merged across the
    benchmarks *shared by both records* (so a benchmark added on one side
    cannot masquerade as a counter regression) and diffed with the full
    group/per-procedure drill-down.
    """
    b_benches = {
        k: v for k, v in (before.get("benchmarks") or {}).items()
        if isinstance(v, Mapping) and "median" in v
    }
    a_benches = {
        k: v for k, v in (after.get("benchmarks") or {}).items()
        if isinstance(v, Mapping) and "median" in v
    }
    shared = sorted(b_benches.keys() & a_benches.keys())
    total_before = sum(b_benches[k]["median"] for k in shared)
    total_after = sum(a_benches[k]["median"] for k in shared)
    total_delta = total_after - total_before
    rows = []
    for name in shared:
        mb, ma = b_benches[name]["median"], a_benches[name]["median"]
        rows.append(
            {
                "benchmark": name,
                "before_median_s": mb,
                "after_median_s": ma,
                "delta_s": ma - mb,
                "relative": ((ma - mb) / mb) if mb > 0 else None,
                "share": _share(ma - mb, total_delta),
            }
        )
    rows.sort(key=lambda r: (-r["delta_s"], r["benchmark"]))

    shared_counter_names = sorted(
        (before.get("counters") or {}).keys() & (after.get("counters") or {}).keys()
    )
    counters = counter_attribution(
        _merged_counters(before, shared_counter_names),
        _merged_counters(after, shared_counter_names),
        top=top,
    )
    return {
        "schema": OBS_REPORT_SCHEMA,
        "kind": "bench",
        "total": _total_block(total_before, total_after),
        "spans": None,
        "counters": counters,
        "metrics": None,
        "benchmarks": rows[:top] if top is not None else rows,
        "notes": [
            f"compared {len(shared)} shared benchmark(s); "
            f"before@{str(before.get('git_sha', 'unknown'))[:12]} vs "
            f"after@{str(after.get('git_sha', 'unknown'))[:12]}"
        ],
    }


def explain_history(records: Sequence[Mapping], top: Optional[int] = None) -> dict:
    """Attribute the newest history record against its natural baseline.

    The baseline is the most recent prior record from the *same machine*
    (wall-clock comparisons across hosts are noise — the same rule
    :func:`repro.obs.bench_history.check_history` applies); when no
    same-machine prior exists, the immediately preceding record is used
    and the report says so.
    """
    if len(records) < 2:
        raise ObsError("attribution needs at least two history records")
    newest = records[-1]
    machine = (newest.get("host") or {}).get("machine")
    reference = next(
        (
            r
            for r in reversed(records[:-1])
            if (r.get("host") or {}).get("machine") == machine
        ),
        None,
    )
    report = compare_bench_records(reference or records[-2], newest, top=top)
    if reference is None:
        report["notes"].append(
            "no prior record from this machine; baseline is the previous "
            "record from a different host (wall-clock deltas are noisy)"
        )
    return report


# --------------------------------------------------------------------------
# Renders
# --------------------------------------------------------------------------


def report_json(report: Mapping) -> str:
    """The report's canonical byte form (sorted keys, trailing newline)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def _pct(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:+.1%}"


def format_report(report: Mapping, top: int = 10) -> str:
    """Terminal attribution table: ranked movers, worst offenders first."""
    lines = ["== attribution report =="]
    total = report.get("total")
    if total:
        lines.append(
            f"total: {total['before_s']:.6f}s -> {total['after_s']:.6f}s "
            f"({_pct(total['relative'])})"
        )
    benches = report.get("benchmarks")
    if benches:
        lines.append("")
        lines.append("benchmark movers (median, ranked by contribution):")
        for row in benches[:top]:
            lines.append(
                f"  {row['benchmark']}: {row['before_median_s']:.6f}s -> "
                f"{row['after_median_s']:.6f}s ({_pct(row['relative'])}, "
                f"share {_pct(row['share'])})"
            )
    spans = report.get("spans")
    if spans:
        lines.append("")
        lines.append("span self-time movers (ranked by contribution):")
        for row in spans[:top]:
            ratio = "-" if row["ratio"] is None else f"{row['ratio']:.2f}x"
            lines.append(
                f"  {row['span']}: {row['before_self_s']:.6f}s -> "
                f"{row['after_self_s']:.6f}s ({ratio}, share {_pct(row['share'])}, "
                f"calls {row['before_count']} -> {row['after_count']})"
            )
    counters = report.get("counters")
    if counters:
        if counters["groups"]:
            lines.append("")
            lines.append("counter groups (by largest mover):")
            for row in counters["groups"][:top]:
                rendered = (
                    f"{row['top_delta']:+.3f}"
                    if isinstance(row["top_delta"], float)
                    else f"{row['top_delta']:+d}"
                )
                lines.append(
                    f"  {row['group']}: top mover {row['top_counter']} "
                    f"{rendered} ({_pct(row['top_relative'])}), "
                    f"{row['movers']} counter(s) moved"
                )
        if counters["per_proc"]:
            lines.append("")
            lines.append("per-procedure exclusive cycles:")
            for row in counters["per_proc"][:top]:
                lines.append(
                    f"  {row['procedure']}: {row['before_cycles']} -> "
                    f"{row['after_cycles']} ({_pct(row['relative'])})"
                )
    metrics = report.get("metrics")
    if metrics:
        if metrics["histograms"]:
            lines.append("")
            lines.append("histogram shifts (mean):")
            for row in metrics["histograms"][:top]:
                lines.append(
                    f"  {row['histogram']}: mean {row['before_mean']:.4f} -> "
                    f"{row['after_mean']:.4f}, count {row['before_count']} -> "
                    f"{row['after_count']}"
                )
        if metrics["counters"]:
            lines.append("")
            lines.append("pipeline metric movers:")
            for row in metrics["counters"][:top]:
                delta = row["delta"]
                rendered = f"{delta:+.3f}" if isinstance(delta, float) else f"{delta:+d}"
                lines.append(
                    f"  {row['counter']}: {row['before']} -> {row['after']} "
                    f"({rendered}, {_pct(row['relative'])})"
                )
    for note in report.get("notes") or []:
        lines.append("")
        lines.append(f"note: {note}")
    return "\n".join(lines)
