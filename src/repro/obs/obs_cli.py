"""CLI for offline telemetry analysis (installed as ``repro-obs``).

Examples::

    repro-obs aggregate trace.jsonl --top 15
    repro-obs flamegraph trace.jsonl --out trace.collapsed
    repro-obs critical-path trace.jsonl --json path.json
    repro-obs explain before.jsonl after.jsonl \\
        --metrics-before before_metrics.json --metrics-after after_metrics.json
    repro-obs explain benchmarks/history          # newest record vs baseline
    repro-obs diff-counters before_snap.json after_snap.json --top 10

Five subcommands over the artifacts the obs stack already emits:

* ``aggregate`` — per-span-name inclusive/exclusive self-time table.
* ``flamegraph`` — Brendan Gregg collapsed-stack export (``stack µs``),
  feedable to any flamegraph renderer and round-trippable.
* ``critical-path`` — the heaviest root→leaf chain through the span tree.
* ``explain`` — regression attribution between two runs: pass two traces
  (plus optional ``--metrics-before``/``--metrics-after`` for the counter
  and histogram drill-down), two ``--metrics`` files, two
  ``BENCH_<date>.json`` history files, or a single history file/directory
  (newest record vs its same-machine baseline).
* ``diff-counters`` — signed hardware-counter deltas with relative
  movement and stable top-movers ordering; inputs are counter-snapshot
  JSONs or ``--metrics`` files carrying the embed.

``--json PATH`` on every subcommand writes the structured result (the
attribution subcommands write a ``repro.obs-report/1`` artifact).  All
analysis is offline and deterministic: identical inputs produce
byte-identical output at any ``--jobs``.  Exit codes: 0 ok, 1 unreadable
or malformed artifact, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.errors import ObsError
from repro.obs.bench_history import BENCH_SCHEMA, load_history
from repro.obs.compare import (
    OBS_REPORT_SCHEMA,
    compare_bench_records,
    compare_runs,
    counter_attribution,
    explain_history,
    format_report,
    report_json,
)
from repro.obs.counters import SNAPSHOT_SCHEMA
from repro.obs.query import (
    RunBundle,
    aggregate,
    critical_path,
    format_aggregate,
    format_critical_path,
    load_run,
    load_trace,
    to_collapsed,
)

__all__ = ["main"]


def _sniff(path: Path) -> str:
    """Classify an artifact file: trace | metrics | bench | counters.

    JSONL traces are not one JSON document, so a whole-file parse failure
    *is* the trace signal; single-document files classify by their schema
    tag or top-level vocabulary.
    """
    try:
        text = path.read_text()
    except OSError as exc:
        raise ObsError(f"cannot read {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return "trace"  # JSON-lines: many documents, one per line
    if not isinstance(payload, dict):
        raise ObsError(f"{path}: not a recognized telemetry artifact")
    if payload.get("schema") == BENCH_SCHEMA:
        return "bench"
    if payload.get("schema") == SNAPSHOT_SCHEMA:
        return "counters"
    if "metrics" in payload:
        return "metrics"
    raise ObsError(
        f"{path}: not a recognized telemetry artifact (expected a JSONL "
        f"trace, a --metrics file, a {SNAPSHOT_SCHEMA!r} snapshot, or a "
        f"{BENCH_SCHEMA!r} history file)"
    )


def _load_pair(jobs: int, load_a: Callable, load_b: Callable):
    """Load two sides, optionally concurrently; result order is fixed.

    ``--jobs`` parallelizes only the *loading* of the two inputs; the
    analysis itself is order-free, which is why reports are byte-identical
    at any jobs value.
    """
    if jobs > 1:
        with ThreadPoolExecutor(max_workers=2) as pool:
            fut_a, fut_b = pool.submit(load_a), pool.submit(load_b)
            return fut_a.result(), fut_b.result()
    return load_a(), load_b()


def _load_counter_side(path: Path) -> dict:
    kind = _sniff(path)
    payload = json.loads(path.read_text())
    if kind == "counters":
        return payload
    if kind == "metrics":
        snap = payload.get("hardware_counters")
        if snap is None:
            raise ObsError(
                f"{path}: metrics file carries no hardware_counters embed "
                "(was the run made with --counters?)"
            )
        return snap
    raise ObsError(f"{path}: expected a counter snapshot or a --metrics file")


def _bench_records(path: Path) -> list[dict]:
    payload = json.loads(path.read_text())
    records = payload.get("records")
    if not isinstance(records, list) or not records:
        raise ObsError(f"{path}: bench history has no records")
    return records


def _write_json(path: Optional[Path], text: str) -> None:
    if path is not None:
        path.write_text(text)


# -- subcommand implementations ---------------------------------------------


def _cmd_aggregate(args) -> int:
    forest = load_trace(args.trace)
    rows = aggregate(forest)
    print(format_aggregate(rows, top=args.top))
    _write_json(
        args.json_path,
        json.dumps(
            {"schema": OBS_REPORT_SCHEMA, "kind": "aggregate", "rows": rows},
            indent=2,
            sort_keys=True,
        )
        + "\n",
    )
    return 0


def _cmd_critical_path(args) -> int:
    forest = load_trace(args.trace)
    rows = critical_path(forest)
    print(format_critical_path(rows))
    _write_json(
        args.json_path,
        json.dumps(
            {"schema": OBS_REPORT_SCHEMA, "kind": "critical-path", "rows": rows},
            indent=2,
            sort_keys=True,
        )
        + "\n",
    )
    return 0


def _cmd_flamegraph(args) -> int:
    forest = load_trace(args.trace)
    collapsed = to_collapsed(forest)
    if args.out is not None:
        args.out.write_text(collapsed)
        print(
            f"{args.out}: {len(collapsed.splitlines())} stack(s) from "
            f"{forest.spans} span(s)"
        )
    else:
        sys.stdout.write(collapsed)
    return 0


def _explain_report(args) -> dict:
    paths = [Path(p) for p in args.runs]
    if len(paths) == 1:
        target = paths[0]
        records = (
            load_history(target) if target.is_dir() else _bench_records(target)
        )
        return explain_history(records, top=args.top)
    before_path, after_path = paths
    kind_a, kind_b = _sniff(before_path), _sniff(after_path)
    if kind_a != kind_b:
        raise ObsError(
            f"cannot compare a {kind_a} artifact against a {kind_b} artifact; "
            "pass two runs of the same kind"
        )
    if kind_a == "bench":
        rec_a, rec_b = _load_pair(
            args.jobs,
            lambda: _bench_records(before_path)[-1],
            lambda: _bench_records(after_path)[-1],
        )
        return compare_bench_records(rec_a, rec_b, top=args.top)
    if kind_a == "trace":
        bundle_a, bundle_b = _load_pair(
            args.jobs,
            lambda: load_run(trace=before_path, metrics=args.metrics_before),
            lambda: load_run(trace=after_path, metrics=args.metrics_after),
        )
        return compare_runs(bundle_a, bundle_b, top=args.top)
    if kind_a == "metrics":
        bundle_a, bundle_b = _load_pair(
            args.jobs,
            lambda: load_run(metrics=before_path),
            lambda: load_run(metrics=after_path),
        )
        return compare_runs(bundle_a, bundle_b, top=args.top)
    snap_a, snap_b = _load_pair(
        args.jobs,
        lambda: _load_counter_side(before_path),
        lambda: _load_counter_side(after_path),
    )
    return {
        "schema": OBS_REPORT_SCHEMA,
        "kind": "counters",
        "total": None,
        "spans": None,
        "counters": counter_attribution(snap_a, snap_b, top=args.top),
        "metrics": None,
        "benchmarks": None,
        "notes": [],
    }


def _cmd_explain(args) -> int:
    report = _explain_report(args)
    print(format_report(report, top=args.top or 10))
    _write_json(args.json_path, report_json(report))
    return 0


def _cmd_diff_counters(args) -> int:
    snap_a, snap_b = _load_pair(
        args.jobs,
        lambda: _load_counter_side(Path(args.before)),
        lambda: _load_counter_side(Path(args.after)),
    )
    counters = counter_attribution(snap_a, snap_b, top=args.top)
    report = {
        "schema": OBS_REPORT_SCHEMA,
        "kind": "counters",
        "total": None,
        "spans": None,
        "counters": counters,
        "metrics": None,
        "benchmarks": None,
        "notes": [],
    }
    if not counters["movers"]:
        print("no counters moved")
    else:
        print(format_report(report, top=args.top or 10))
        print()
        print("movers (|delta| ordered):")
        for row in counters["movers"][: args.top or 20]:
            delta = row["delta"]
            rendered = f"{delta:+.3f}" if isinstance(delta, float) else f"{delta:+d}"
            rel = "-" if row["relative"] is None else f"{row['relative']:+.1%}"
            print(
                f"  {row['counter']}: {row['before']} -> {row['after']} "
                f"({rendered}, {rel})"
            )
    _write_json(args.json_path, report_json(report))
    return 0


# -- parser ------------------------------------------------------------------


def _add_json_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH", dest="json_path",
        help="write the structured result to PATH",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="keep only the N biggest movers per section",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallel artifact loading; output is byte-identical at any N "
        "(default: 1)",
    )
    _add_json_flag(parser)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Query, visualize and diff the repo's own telemetry "
        "artifacts (traces, metrics, counters, bench history).",
        epilog="exit codes: 0 ok; 1 unreadable or malformed artifact; "
        "2 usage error",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    agg = sub.add_parser(
        "aggregate", help="per-span-name self/inclusive time table"
    )
    agg.add_argument("trace", type=Path, help="JSONL trace artifact")
    agg.add_argument(
        "--top", type=int, default=None, metavar="N", help="show only N rows"
    )
    _add_json_flag(agg)
    agg.set_defaults(func=_cmd_aggregate)

    crit = sub.add_parser(
        "critical-path", help="heaviest root-to-leaf chain through the spans"
    )
    crit.add_argument("trace", type=Path, help="JSONL trace artifact")
    _add_json_flag(crit)
    crit.set_defaults(func=_cmd_critical_path)

    flame = sub.add_parser(
        "flamegraph", help="collapsed-stack flamegraph export (stack µs lines)"
    )
    flame.add_argument("trace", type=Path, help="JSONL trace artifact")
    flame.add_argument(
        "--out", type=Path, default=None, metavar="PATH",
        help="write collapsed stacks to PATH (default: stdout)",
    )
    flame.set_defaults(func=_cmd_flamegraph)

    explain = sub.add_parser(
        "explain",
        help="attribute a regression between two runs (traces, metrics, "
        "counter snapshots, or bench history)",
    )
    explain.add_argument(
        "runs", nargs="+", metavar="RUN",
        help="two artifacts of the same kind, or one bench-history "
        "file/directory (newest record vs its baseline)",
    )
    explain.add_argument(
        "--metrics-before", type=Path, default=None, metavar="PATH",
        help="metrics artifact joined to the first trace",
    )
    explain.add_argument(
        "--metrics-after", type=Path, default=None, metavar="PATH",
        help="metrics artifact joined to the second trace",
    )
    _add_common(explain)
    explain.set_defaults(func=_cmd_explain)

    diff = sub.add_parser(
        "diff-counters",
        help="signed hardware-counter deltas with relative movement",
    )
    diff.add_argument("before", help="counter snapshot or --metrics file")
    diff.add_argument("after", help="counter snapshot or --metrics file")
    _add_common(diff)
    diff.set_defaults(func=_cmd_diff_counters)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "jobs", 1) < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.command == "explain" and len(args.runs) not in (1, 2):
        parser.error("explain takes one history file/directory or two artifacts")
    if args.command == "explain" and len(args.runs) == 1:
        if args.metrics_before or args.metrics_after:
            parser.error("--metrics-before/--metrics-after need two trace runs")
    try:
        return args.func(args)
    except (ObsError, OSError, json.JSONDecodeError) as exc:
        print(f"repro-obs FAILED: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
