"""``repro.obs`` — tracing, metrics and run-manifest telemetry.

The observability layer for the reproduction's own pipeline ("profile the
profiler"): nestable spans with JSONL/Chrome-trace exporters
(:mod:`repro.obs.trace`), a counters/gauges/histograms registry
(:mod:`repro.obs.metrics`), the run manifest (:mod:`repro.obs.manifest`),
estimator-health monitoring — drift detectors, CI-calibration audits and
structured alerts (:mod:`repro.obs.health`) — and artifact validators
(:mod:`repro.obs.validate`).

The contract every instrumented module leans on: **telemetry off (the
default) is a strict no-op** — no RNG draws, no table changes, near-zero
work — so rendered experiment output is byte-identical with telemetry on,
off, serial, or parallel.  See ``docs/observability.md``.
"""

from repro.errors import ObsError
from repro.obs.counters import (
    HardwareCounters,
    counters_active,
    current_counters,
    diff_snapshots,
    empty_snapshot,
    format_counters,
    merge_snapshots,
)
from repro.obs.bench_history import (
    BENCH_SCHEMA,
    append_record,
    bench_path,
    build_record,
    check_history,
    load_history,
)
from repro.obs.manifest import SEED_SCHEME, build_manifest, host_facts
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    inc,
    metrics_active,
    observe,
    set_gauge,
    write_metrics,
)
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    chrome_trace_events,
    current_tracer,
    instant,
    span,
    tracing,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.health import (
    ALERT_SCHEMA,
    REPORT_SCHEMA,
    AlertEvent,
    CoverageAudit,
    Cusum,
    EstimatorHealthMonitor,
    HealthConfig,
    PageHinkley,
    build_health_report,
    read_alert_log,
    residual_signals,
    write_alert_log,
)
from repro.obs.validate import (
    ArtifactError,
    require_span_coverage,
    validate_alert_log,
    validate_bench_file,
    validate_chrome_trace,
    validate_counter_snapshot,
    validate_health_report,
    validate_health_summary,
    validate_hw_counters_file,
    validate_metrics_file,
    validate_serve_stats,
    validate_trace_jsonl,
)

__all__ = [
    "ObsError",
    "HardwareCounters",
    "counters_active",
    "current_counters",
    "diff_snapshots",
    "empty_snapshot",
    "format_counters",
    "merge_snapshots",
    "BENCH_SCHEMA",
    "append_record",
    "bench_path",
    "build_record",
    "check_history",
    "load_history",
    "SEED_SCHEME",
    "build_manifest",
    "host_facts",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_registry",
    "inc",
    "metrics_active",
    "observe",
    "set_gauge",
    "write_metrics",
    "SpanRecord",
    "Tracer",
    "chrome_trace_events",
    "current_tracer",
    "instant",
    "span",
    "tracing",
    "write_chrome_trace",
    "write_jsonl",
    "ALERT_SCHEMA",
    "REPORT_SCHEMA",
    "AlertEvent",
    "CoverageAudit",
    "Cusum",
    "EstimatorHealthMonitor",
    "HealthConfig",
    "PageHinkley",
    "build_health_report",
    "read_alert_log",
    "residual_signals",
    "write_alert_log",
    "ArtifactError",
    "require_span_coverage",
    "validate_alert_log",
    "validate_bench_file",
    "validate_chrome_trace",
    "validate_counter_snapshot",
    "validate_health_report",
    "validate_health_summary",
    "validate_hw_counters_file",
    "validate_metrics_file",
    "validate_serve_stats",
    "validate_trace_jsonl",
]
