"""Offline telemetry queries: span forests, self-time, flamegraphs, joins.

Every artifact the observability stack emits — JSONL span traces, metrics
snapshots with embedded run manifests and hardware counters, bench-history
records — is append-time cheap and read-time mute: until this module,
nothing in the repo could aggregate, walk or visualize any of it.  This is
the read side.  It is strictly **offline**: nothing here runs inside an
instrumented region, so the <5% telemetry-overhead gate and the engine's
bit-identity guarantees are untouched by construction.

The pipeline:

* :func:`load_trace` parses a JSONL trace (versioned ``repro.trace/1``
  streams and legacy headerless ones) into a :class:`TraceForest` — one
  span tree per ``(pid, tid)`` track, with nesting reconstructed from the
  recorded open order (``seq``) and depth, never from wall-clock (adopted
  worker spans keep foreign epochs, so interval math is a trap the
  exporter documents).
* :func:`aggregate` rolls the forest up by span name: call count,
  inclusive wall-clock, and **exclusive self time** (inclusive minus
  direct children) — the quantity a sampling profiler would report.
* :func:`critical_path` walks the heaviest chain root → leaf, the spine a
  regression most likely lives on.
* :func:`to_collapsed` / :func:`parse_collapsed` export/import Brendan
  Gregg's collapsed-stack flamegraph format, round-trippable: parsing the
  export and re-aggregating reproduces the exact per-stack totals.
* :func:`load_run` joins a trace with its ``--metrics`` artifact (registry
  snapshot, hardware counters, manifest) into one :class:`RunBundle`,
  keyed by the run manifest's config fingerprints so a mismatched pairing
  is caught instead of silently attributed.

Everything is deterministic: identical input files produce identical
structures, orderings and rendered text, regardless of thread count
(:mod:`repro.obs.compare` leans on this for byte-identical reports).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Optional, Union

from repro.errors import ObsError
from repro.obs.trace import TRACE_SCHEMA

__all__ = [
    "SpanNode",
    "TraceForest",
    "RunBundle",
    "load_trace",
    "load_run",
    "aggregate",
    "critical_path",
    "to_collapsed",
    "parse_collapsed",
    "format_aggregate",
    "format_critical_path",
]


@dataclass
class SpanNode:
    """One span in the reconstructed tree.

    ``inclusive`` is the span's own wall-clock; ``exclusive`` subtracts the
    direct children's inclusive time (clamped at zero — float subtraction
    of near-equal timestamps can go an ULP negative).
    """

    name: str
    start: float
    end: float
    depth: int
    seq: int
    pid: int
    tid: int
    attrs: dict = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def inclusive(self) -> float:
        return self.end - self.start

    @property
    def exclusive(self) -> float:
        return max(self.inclusive - sum(c.inclusive for c in self.children), 0.0)

    def walk(self) -> Iterator["SpanNode"]:
        """Depth-first, children in open (seq) order — deterministic."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class TraceForest:
    """A parsed trace: span trees per track plus the stream's identity."""

    roots: list[SpanNode]
    manifest: Optional[dict]
    schema: Optional[str]  # None for a legacy headerless stream
    spans: int

    def walk(self) -> Iterator[SpanNode]:
        for root in self.roots:
            yield from root.walk()

    @property
    def total_inclusive(self) -> float:
        """Wall-clock summed over root spans (tracks don't nest)."""
        return sum(root.inclusive for root in self.roots)

    def fingerprints(self) -> dict[str, str]:
        """Experiment id → config fingerprint from the embedded manifest."""
        return _manifest_fingerprints(self.manifest)


def _manifest_fingerprints(manifest: Optional[Mapping]) -> dict[str, str]:
    out = {}
    for exp_id, entry in ((manifest or {}).get("experiments") or {}).items():
        if isinstance(entry, Mapping) and entry.get("fingerprint"):
            out[exp_id] = entry["fingerprint"]
    return out


def load_trace(path: Union[str, Path]) -> TraceForest:
    """Parse a JSONL trace into a :class:`TraceForest`.

    Accepts both versioned streams (first line ``{"type": "header",
    "schema": "repro.trace/1"}``) and legacy headerless ones; an unknown
    header schema is a loud :class:`ObsError`, not a guess.  Nesting is
    rebuilt per ``(pid, tid)`` track from each span's recorded open order
    and depth: records sorted by ``seq`` replay the open sequence, and a
    span's parent is the deepest still-open span shallower than it.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise ObsError(f"cannot read trace {path}: {exc}") from exc

    manifest: Optional[dict] = None
    schema: Optional[str] = None
    records: list[SpanNode] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
        kind = obj.get("type")
        if kind == "header":
            if obj.get("schema") != TRACE_SCHEMA:
                raise ObsError(
                    f"{path}:{lineno}: unknown trace schema "
                    f"{obj.get('schema')!r} (expected {TRACE_SCHEMA!r})"
                )
            schema = obj["schema"]
            continue
        if kind == "manifest":
            manifest = {k: v for k, v in obj.items() if k != "type"}
            continue
        if kind != "span":
            raise ObsError(f"{path}:{lineno}: unknown record type {kind!r}")
        try:
            records.append(
                SpanNode(
                    name=obj["name"],
                    start=obj["start"],
                    end=obj["end"],
                    depth=obj["depth"],
                    seq=obj["seq"],
                    pid=obj["pid"],
                    tid=obj["tid"],
                    attrs=obj.get("attrs") or {},
                )
            )
        except KeyError as exc:
            raise ObsError(f"{path}:{lineno}: span record missing {exc}") from exc
    if not records:
        raise ObsError(f"{path}: contains no span records")

    # Group by track; replay each track's open order to rebuild nesting.
    tracks: dict[tuple[int, int], list[SpanNode]] = {}
    for node in records:
        tracks.setdefault((node.pid, node.tid), []).append(node)
    roots: list[SpanNode] = []
    for track in sorted(tracks):
        stack: list[SpanNode] = []
        for node in sorted(tracks[track], key=lambda n: n.seq):
            del stack[node.depth :]  # everything at >= this depth has closed
            parent = stack[-1] if stack else None
            (parent.children if parent is not None else roots).append(node)
            stack.append(node)
    # Root order follows open order within the first track and track order
    # across tracks; re-sort by (pid, tid, seq) for one global stable order.
    roots.sort(key=lambda n: (n.pid, n.tid, n.seq))
    return TraceForest(
        roots=roots, manifest=manifest, schema=schema, spans=len(records)
    )


# --------------------------------------------------------------------------
# Aggregation
# --------------------------------------------------------------------------


def aggregate(forest: TraceForest) -> list[dict]:
    """Per-span-name rollup, heaviest self time first.

    Each row: ``{"name", "count", "inclusive_s", "exclusive_s", "min_s",
    "max_s"}`` where the min/max are per-span inclusive durations.
    Ordering is total (descending exclusive, then name), so the table is
    byte-stable for identical inputs.
    """
    rows: dict[str, dict] = {}
    for node in forest.walk():
        row = rows.setdefault(
            node.name,
            {
                "name": node.name,
                "count": 0,
                "inclusive_s": 0.0,
                "exclusive_s": 0.0,
                "min_s": None,
                "max_s": None,
            },
        )
        row["count"] += 1
        row["inclusive_s"] += node.inclusive
        row["exclusive_s"] += node.exclusive
        row["min_s"] = (
            node.inclusive if row["min_s"] is None else min(row["min_s"], node.inclusive)
        )
        row["max_s"] = (
            node.inclusive if row["max_s"] is None else max(row["max_s"], node.inclusive)
        )
    return sorted(rows.values(), key=lambda r: (-r["exclusive_s"], r["name"]))


def critical_path(forest: TraceForest) -> list[dict]:
    """The heaviest chain from the heaviest root down to a leaf.

    At each level the walk descends into the child with the largest
    inclusive time (ties broken by open order, so the path is
    deterministic).  Each hop reports its share of the path root, which is
    where "the run is slow" turns into "this nesting level is slow".
    """
    if not forest.roots:
        return []
    head = max(forest.roots, key=lambda n: (n.inclusive, -n.seq))
    total = head.inclusive
    path = []
    node: Optional[SpanNode] = head
    while node is not None:
        path.append(
            {
                "name": node.name,
                "inclusive_s": node.inclusive,
                "exclusive_s": node.exclusive,
                "fraction_of_root": (node.inclusive / total) if total > 0 else 0.0,
                "depth": node.depth,
            }
        )
        node = (
            max(node.children, key=lambda c: (c.inclusive, -c.seq))
            if node.children
            else None
        )
    return path


# --------------------------------------------------------------------------
# Flamegraph (Brendan Gregg collapsed-stack format)
# --------------------------------------------------------------------------


def _frame(name: str) -> str:
    # ';' separates stack frames in the collapsed format; a span name
    # containing one would corrupt every downstream consumer.
    return name.replace(";", ":")


def to_collapsed(forest: TraceForest) -> str:
    """Export the forest as collapsed stacks: ``root;child;leaf <µs>``.

    The value is the stack's summed **exclusive** time in integer
    microseconds (the flamegraph convention: every sample is counted on
    exactly one stack, so stack values sum to total wall-clock).  Lines
    are sorted lexicographically; the output is byte-stable and
    round-trips through :func:`parse_collapsed` with identical totals.
    """
    stacks: dict[str, float] = {}

    def visit(node: SpanNode, prefix: str) -> None:
        stack = f"{prefix};{_frame(node.name)}" if prefix else _frame(node.name)
        stacks[stack] = stacks.get(stack, 0.0) + node.exclusive
        for child in node.children:
            visit(child, stack)

    for root in forest.roots:
        visit(root, "")
    lines = [
        f"{stack} {round(value * 1e6)}"
        for stack, value in sorted(stacks.items())
        if round(value * 1e6) > 0
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> dict[str, int]:
    """Parse collapsed-stack text back to ``{stack: µs}``.

    Repeated stacks re-aggregate by summing — the same normalization
    :func:`to_collapsed` applies — so ``parse_collapsed(to_collapsed(f))``
    equals the exporter's internal totals exactly (they are integers by
    then; no float round-trip is involved).
    """
    stacks: dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        stack, sep, value = line.rpartition(" ")
        if not sep or not stack:
            raise ObsError(f"collapsed-stack line {lineno}: no value field: {line!r}")
        try:
            count = int(value)
        except ValueError as exc:
            raise ObsError(
                f"collapsed-stack line {lineno}: value {value!r} is not an integer"
            ) from exc
        if count < 0:
            raise ObsError(f"collapsed-stack line {lineno}: negative value {count}")
        stacks[stack] = stacks.get(stack, 0) + count
    return stacks


# --------------------------------------------------------------------------
# Run joins (trace × metrics × counters, keyed by manifest fingerprints)
# --------------------------------------------------------------------------


@dataclass
class RunBundle:
    """One run's joined artifacts: the span forest plus its metrics file."""

    forest: Optional[TraceForest]
    metrics: Optional[dict]  # the registry snapshot ({counters, gauges, ...})
    manifest: Optional[dict]
    hw_counters: Optional[dict]  # repro.hwcounters/1 snapshot, if captured

    def fingerprints(self) -> dict[str, str]:
        trace_prints = self.forest.fingerprints() if self.forest else {}
        return trace_prints or _manifest_fingerprints(self.manifest)


def load_run(
    trace: Optional[Union[str, Path]] = None,
    metrics: Optional[Union[str, Path]] = None,
) -> RunBundle:
    """Join a run's trace and metrics artifacts into one :class:`RunBundle`.

    Either artifact may be absent.  When both are present and both carry a
    manifest, their config fingerprints must agree on every shared
    experiment id — a mismatch means the files came from different runs,
    and joining them would attribute one run's counters to another run's
    spans; that is an :class:`ObsError`, not a warning.
    """
    if trace is None and metrics is None:
        raise ObsError("load_run needs a trace artifact, a metrics artifact, or both")
    forest = load_trace(trace) if trace is not None else None
    metrics_snapshot = manifest = hw = None
    if metrics is not None:
        path = Path(metrics)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ObsError(f"cannot read metrics {path}: {exc}") from exc
        if not isinstance(payload, dict) or "metrics" not in payload:
            raise ObsError(f"{path}: not a --metrics artifact (no 'metrics' key)")
        metrics_snapshot = payload["metrics"]
        manifest = payload.get("manifest")
        hw = payload.get("hardware_counters")
    if forest is not None and forest.manifest and manifest:
        trace_prints = _manifest_fingerprints(forest.manifest)
        metrics_prints = _manifest_fingerprints(manifest)
        for exp_id in sorted(trace_prints.keys() & metrics_prints.keys()):
            if trace_prints[exp_id] != metrics_prints[exp_id]:
                raise ObsError(
                    f"trace and metrics artifacts disagree on the config "
                    f"fingerprint of experiment {exp_id!r} "
                    f"({trace_prints[exp_id]} vs {metrics_prints[exp_id]}); "
                    "they are not from the same run"
                )
    return RunBundle(
        forest=forest,
        metrics=metrics_snapshot,
        manifest=manifest if manifest is not None else (forest.manifest if forest else None),
        hw_counters=hw,
    )


# --------------------------------------------------------------------------
# Terminal renders (deterministic text tables)
# --------------------------------------------------------------------------


def _fmt_s(seconds: float) -> str:
    return f"{seconds:.6f}"


def format_aggregate(rows: list[dict], top: Optional[int] = None) -> str:
    """Text table of an :func:`aggregate` rollup (self-time ordered)."""
    rows = rows[:top] if top is not None else rows
    if not rows:
        return "(no spans)"
    width = max(len(r["name"]) for r in rows)
    lines = [
        "span".ljust(width)
        + f"  {'count':>7}  {'self_s':>12}  {'incl_s':>12}  {'max_s':>12}"
    ]
    for row in rows:
        lines.append(
            row["name"].ljust(width)
            + f"  {row['count']:>7}"
            + f"  {_fmt_s(row['exclusive_s']):>12}"
            + f"  {_fmt_s(row['inclusive_s']):>12}"
            + f"  {_fmt_s(row['max_s']):>12}"
        )
    return "\n".join(lines)


def format_critical_path(path_rows: list[dict]) -> str:
    """Text render of a :func:`critical_path` walk (one hop per line)."""
    if not path_rows:
        return "(no spans)"
    lines = ["critical path (heaviest chain, root -> leaf):"]
    for row in path_rows:
        indent = "  " * (row["depth"] + 1)
        lines.append(
            f"{indent}{row['name']}  incl {_fmt_s(row['inclusive_s'])}s  "
            f"self {_fmt_s(row['exclusive_s'])}s  "
            f"({row['fraction_of_root']:.1%} of root)"
        )
    return "\n".join(lines)
