"""Benchmark history: every benchmark run becomes a point on a trajectory.

The ROADMAP's "as fast as the hardware allows" goal needs a measurement
backbone: a durable, append-only record of what the benchmark suite
measured, on which commit, on which host — plus the hardware-counter
deltas each benchmark produced, which are *seed-determined* and therefore
a bit-exact determinism oracle that shared CI runners cannot blur the way
they blur wall-clock.

File layout: ``BENCH_<date>.json`` (one file per calendar day, records
append within it) under a history directory — ``benchmarks/history/`` by
convention.  Each record carries:

* ``created_utc`` and ``git_sha`` — when and what code;
* ``host`` — the :func:`repro.obs.manifest.host_facts` block, so
  trajectories can be segmented by machine;
* ``benchmarks`` — per-benchmark wall-clock stats distilled from
  pytest-benchmark's JSON export (``--benchmark-json``);
* ``counters`` — per-benchmark hardware-counter snapshots (see
  :mod:`repro.obs.counters`), when the run captured them.

:func:`check_history` is the regression gate: the newest record's
wall-clock is compared against the trailing median of prior records
(>20% slower fails), and its counter snapshots must be bit-identical to
the most recent prior record at the same git sha (any drift fails —
counters are deterministic at fixed seed, so a mismatch means the run
was not reproducible).  CI runs the counter gate only
(``wallclock=False``): shared runners make time noisy, but determinism
is binary everywhere.
"""

from __future__ import annotations

import datetime
import json
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.errors import ObsError
from repro.obs.counters import SNAPSHOT_SCHEMA
from repro.obs.manifest import host_facts

__all__ = [
    "BENCH_SCHEMA",
    "SUMMARY_SCHEMA",
    "DEFAULT_MAX_REGRESSION",
    "bench_path",
    "build_record",
    "append_record",
    "load_history",
    "check_history",
    "summarize_history",
    "distill_pytest_benchmark",
]

#: Schema tag on every history file (bumped on layout changes).
BENCH_SCHEMA = "repro.bench-history/1"

#: Schema tag on the distilled repo-root ``BENCH_<date>.json`` summary.
SUMMARY_SCHEMA = "repro.bench-summary/1"

#: Wall-clock gate: newest median may exceed the trailing median by this
#: fraction before the check fails.
DEFAULT_MAX_REGRESSION = 0.20

#: The wall-clock stats kept per benchmark (subset of pytest-benchmark's).
_STAT_KEYS = ("min", "max", "mean", "median", "stddev", "rounds")


def bench_path(directory: Union[str, Path], date: Optional[str] = None) -> Path:
    """The history file for ``date`` (ISO ``YYYY-MM-DD``; default today)."""
    if date is None:
        date = datetime.date.today().isoformat()
    try:
        datetime.date.fromisoformat(date)
    except ValueError as exc:
        raise ObsError(f"bench date must be ISO YYYY-MM-DD, got {date!r}") from exc
    return Path(directory) / f"BENCH_{date}.json"


def distill_pytest_benchmark(payload: Mapping) -> dict:
    """Per-benchmark wall-clock stats from a pytest-benchmark JSON export.

    Keeps name → {min, max, mean, median, stddev, rounds}; everything else
    in the export (machine_info, commit_info, per-round data) is either
    redundant with the record's own fields or too bulky for an append-only
    log.
    """
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ObsError("pytest-benchmark payload has no 'benchmarks' list")
    distilled = {}
    for bench in benchmarks:
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats", {})
        if not name or not stats:
            raise ObsError(f"malformed benchmark entry: {bench.get('name')!r}")
        distilled[name] = {key: stats[key] for key in _STAT_KEYS if key in stats}
    return distilled


def build_record(
    benchmark_payload: Optional[Mapping] = None,
    counter_snapshots: Optional[Mapping[str, Mapping]] = None,
    git_sha: str = "unknown",
    created_utc: Optional[str] = None,
) -> dict:
    """Assemble one history record (pure; nothing touches disk here)."""
    if benchmark_payload is None and not counter_snapshots:
        raise ObsError(
            "a bench record needs benchmark stats, counter snapshots, or both"
        )
    counters = {}
    for name, snap in (counter_snapshots or {}).items():
        if snap.get("schema") != SNAPSHOT_SCHEMA:
            raise ObsError(
                f"counter snapshot for {name!r} has schema "
                f"{snap.get('schema')!r}, expected {SNAPSHOT_SCHEMA!r}"
            )
        counters[name] = {
            "schema": snap["schema"],
            "totals": dict(snap.get("totals", {})),
            "per_proc": {p: dict(r) for p, r in snap.get("per_proc", {}).items()},
        }
    return {
        "created_utc": created_utc
        or datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "git_sha": git_sha,
        "host": host_facts(),
        "benchmarks": (
            distill_pytest_benchmark(benchmark_payload)
            if benchmark_payload is not None
            else {}
        ),
        "counters": counters,
    }


def _load_file(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ObsError(f"cannot read bench history {path}: {exc}") from exc
    if payload.get("schema") != BENCH_SCHEMA:
        raise ObsError(
            f"{path}: bench-history schema mismatch: expected "
            f"{BENCH_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("records"), list):
        raise ObsError(f"{path}: bench history has no 'records' list")
    return payload


def append_record(path: Union[str, Path], record: Mapping) -> Path:
    """Append ``record`` to the history file at ``path`` (created if absent).

    Append-only by construction: existing records are re-serialized
    untouched, never rewritten or pruned.
    """
    path = Path(path)
    if path.exists():
        payload = _load_file(path)
    else:
        payload = {"schema": BENCH_SCHEMA, "records": []}
    payload["records"].append(dict(record))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_history(directory: Union[str, Path]) -> list[dict]:
    """Every record under ``directory``'s ``BENCH_*.json``, oldest first.

    Ordered by file date then within-file position, so "trailing" always
    means "chronologically before the newest".
    """
    records: list[dict] = []
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        records.extend(_load_file(path)["records"])
    return records


def _trailing_median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def check_history(
    records: Sequence[Mapping],
    max_regression: float = DEFAULT_MAX_REGRESSION,
    wallclock: bool = True,
    counters: bool = True,
) -> list[str]:
    """Gate the newest record against the trail; returns failure messages.

    * **Wall-clock** (``wallclock=True``): for each benchmark in the newest
      record, its median runtime must not exceed the median of that
      benchmark's prior medians by more than ``max_regression``.  Prior
      records from other host machines are skipped — cross-machine time
      comparisons are noise.  A benchmark with no prior points passes (a
      trajectory has to start somewhere).
    * **Counter determinism** (``counters=True``): hardware counters are
      seed-determined, so at a fixed git sha every run must produce
      bit-identical snapshots.  The newest record's snapshots are compared
      against the most recent prior record with the same ``git_sha``; any
      difference in any shared benchmark is a failure.

    An empty or single-record history passes vacuously.  A benchmark that
    exists only in the newest record (just added, or renamed historically)
    has no prior points and passes; degenerate records — ``benchmarks`` /
    ``counters`` / ``host`` present but null, or stats missing — are
    skipped rather than crashing the gate (histories are hand-editable
    JSON, and the gate must not fail for a reason other than a regression).
    """
    failures: list[str] = []
    if len(records) < 2:
        return failures
    newest = records[-1]
    trail = records[:-1]

    if wallclock:
        machine = (newest.get("host") or {}).get("machine")
        for name, stats in (newest.get("benchmarks") or {}).items():
            current = (stats or {}).get("median")
            if current is None:
                continue
            prior = [
                benches[name]["median"]
                for r in trail
                for benches in [(r.get("benchmarks") or {})]
                if isinstance(benches.get(name), Mapping)
                and "median" in benches[name]
                and (r.get("host") or {}).get("machine") == machine
            ]
            if not prior:
                continue
            baseline = _trailing_median(prior)
            if baseline > 0 and current > baseline * (1.0 + max_regression):
                failures.append(
                    f"wall-clock regression: {name} median {current:.6f}s is "
                    f"{current / baseline - 1.0:+.1%} vs trailing median "
                    f"{baseline:.6f}s (limit +{max_regression:.0%})"
                )

    if counters:
        sha = newest.get("git_sha")
        reference = next(
            (r for r in reversed(trail) if r.get("git_sha") == sha), None
        )
        if reference is not None:
            for name, snap in (newest.get("counters") or {}).items():
                ref_snap = (reference.get("counters") or {}).get(name)
                if ref_snap is None:
                    continue
                if snap != ref_snap:
                    drifted = _describe_drift(ref_snap, snap)
                    failures.append(
                        f"counter drift: {name} at git sha {sha} is not "
                        f"bit-identical to the prior run ({drifted}); "
                        "counters must be deterministic at a fixed seed"
                    )
    return failures


def summarize_history(records: Sequence[Mapping]) -> dict:
    """Distill a full history into one human-scannable summary block.

    For every benchmark in the newest record: its current median, the
    trailing median over prior *same-machine* records (the same baseline
    :func:`check_history` gates against), the relative movement, and how
    many points the trajectory has.  This is the payload behind the
    repo-root ``BENCH_<date>.json`` dashboard file — small enough to read
    in a diff, derived entirely from ``benchmarks/history/``.
    """
    if not records:
        raise ObsError("cannot summarize an empty bench history")
    newest = records[-1]
    trail = records[:-1]
    machine = (newest.get("host") or {}).get("machine")
    benches = {}
    for name, stats in sorted((newest.get("benchmarks") or {}).items()):
        current = (stats or {}).get("median") if isinstance(stats, Mapping) else None
        if current is None:
            continue
        prior = [
            benches_r[name]["median"]
            for r in trail
            for benches_r in [(r.get("benchmarks") or {})]
            if isinstance(benches_r.get(name), Mapping)
            and "median" in benches_r[name]
            and (r.get("host") or {}).get("machine") == machine
        ]
        baseline = _trailing_median(prior) if prior else None
        benches[name] = {
            "median_s": current,
            "trailing_median_s": baseline,
            "relative": (
                (current - baseline) / baseline if baseline else None
            ),
            "points": len(prior) + 1,
        }
    return {
        "schema": SUMMARY_SCHEMA,
        "git_sha": newest.get("git_sha", "unknown"),
        "created_utc": newest.get("created_utc"),
        "machine": machine,
        "records": len(records),
        "benchmarks": benches,
    }


def _describe_drift(ref: Mapping, new: Mapping) -> str:
    """Name the first few counters whose values moved (for the failure text)."""
    moved = []
    ref_totals = ref.get("totals", {})
    new_totals = new.get("totals", {})
    for key in sorted(ref_totals.keys() | new_totals.keys()):
        a, b = ref_totals.get(key), new_totals.get(key)
        if a != b:
            moved.append(f"{key}: {a} -> {b}")
        if len(moved) >= 3:
            break
    return "; ".join(moved) if moved else "per-procedure attribution differs"
