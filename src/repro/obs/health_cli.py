"""CLI for fleet estimator-health reports (installed as ``repro-health``).

Examples::

    repro-health --report health.json                 # render a saved report
    repro-health --stats serve_metrics.json           # report from a metrics file
    repro-health --stats run.json --alerts alerts.jsonl --json health.json
    repro-health --report health.json --check         # CI gate: healthy or exit 1
    repro-health --report health.json --check --expect-drift   # drift drill gate
    repro-health --report health.json \
        --counters-before base.json --counters-after drifted.json

The command renders one fleet health report — per-tenant drift scores,
CI-calibration coverage, staleness and SLO state, plus the fleet rollup —
from either a saved ``repro.health-report/1`` artifact (``--report``) or any
JSON file carrying per-tenant health summaries (``--stats``): a ``--metrics``
file from ``repro-serve``/``repro-experiments``, a raw ``stats`` wire
response, or a ``repro-serve --json`` fleet report.  ``--alerts`` folds a
JSONL alert log into the assembled report.

``--check`` turns the render into a pass/fail gate: exit 1 when the fleet is
unhealthy (drift alarms, health alerts, or a breached SLO), exit 0 when
clean.  ``--expect-drift`` flips the drift clause for injected-drift drills:
the gate *fails unless* at least one drift alarm fired (coverage alerts are
tolerated too — degraded coverage against base-regime truth is exactly what
an injected drift causes), while staleness/SLO alerts still fail.  Exit 2 on
usage errors, 1 on unreadable or invalid input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.counters import snapshot_deltas
from repro.obs.health import build_health_report, read_alert_log
from repro.obs.validate import ArtifactError, _check_health_report, validate_counter_snapshot

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-health",
        description="Render (and optionally gate on) a fleet estimator-health "
        "report.",
        epilog="exit codes: 0 healthy (or no --check); 1 unhealthy or invalid "
        "input; 2 usage error",
    )
    source = parser.add_argument_group("input")
    source.add_argument(
        "--report", type=Path, default=None, metavar="PATH",
        help="a saved repro.health-report/1 JSON artifact",
    )
    source.add_argument(
        "--stats", type=Path, default=None, metavar="PATH",
        help="any JSON carrying tenant health summaries: a --metrics file, a "
        "stats wire response, or a repro-serve --json report",
    )
    source.add_argument(
        "--alerts", type=Path, default=None, metavar="PATH",
        help="JSONL alert log to fold into the report (see repro-serve "
        "--alert-log)",
    )
    gate = parser.add_argument_group("gate")
    gate.add_argument(
        "--check", action="store_true",
        help="exit 1 unless the fleet is healthy",
    )
    gate.add_argument(
        "--expect-drift", action="store_true",
        help="with --check: require at least one drift alarm (injected-drift "
        "drill) and tolerate drift/coverage alerts",
    )
    source.add_argument(
        "--counters-before", type=Path, default=None, metavar="PATH",
        help="hardware-counter snapshot (or --metrics file) from before the "
        "drift window; with --counters-after, the report carries the top "
        "moved counters",
    )
    source.add_argument(
        "--counters-after", type=Path, default=None, metavar="PATH",
        help="hardware-counter snapshot (or --metrics file) from after the "
        "drift window",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH", dest="json_path",
        help="write the (normalized) health report to PATH",
    )
    return parser


def _load_counter_snapshot(path: Path) -> dict:
    payload = json.loads(path.read_text())
    if isinstance(payload, dict) and "hardware_counters" in payload:
        payload = payload["hardware_counters"]
    validate_counter_snapshot(payload, path.name)
    return payload


def _summaries_of(payload: dict, where: str) -> dict:
    """Pull tenant health summaries out of any of the accepted JSON shapes."""
    if "health" in payload and isinstance(payload["health"], dict):
        health = payload["health"]
        # A --metrics file's "health" key is a full report; a stats payload's
        # is the plain tenant->summary mapping.
        if health.get("schema") and "tenants" in health:
            return dict(health["tenants"])
        return dict(health)
    if "serve" in payload and isinstance(payload["serve"], dict):
        return _summaries_of(payload["serve"], where)
    if "stats" in payload and isinstance(payload["stats"], dict):
        return _summaries_of(payload["stats"], where)
    raise ArtifactError(
        f"{where}: no health summaries found (expected a 'health' key; was "
        "the run made with health monitoring enabled?)"
    )


def _load_report(args: argparse.Namespace) -> dict:
    if args.report is not None:
        payload = json.loads(args.report.read_text())
        _check_health_report(payload, args.report.name)
        return payload
    payload = json.loads(args.stats.read_text())
    summaries = _summaries_of(payload, args.stats.name)
    alerts = read_alert_log(args.alerts) if args.alerts is not None else ()
    report = build_health_report(summaries, alerts=alerts)
    _check_health_report(report, args.stats.name)
    return report


def _render(report: dict) -> None:
    fleet = report["fleet"]
    print(
        f"fleet: {fleet['tenants']} tenant(s), max drift score "
        f"{fleet['max_drift_score']:.2f}, {fleet['drift_alarms']} drift "
        f"alarm(s), {fleet['alerts']} alert(s)"
    )
    coverage = fleet["coverage"]
    if coverage is None:
        print("coverage: n/a (no audited checks)")
    else:
        print(
            f"coverage: {coverage:.3f} over {fleet['coverage_checks']} checks "
            f"(nominal {report['nominal_coverage']:.2f}, worst tenant "
            f"{fleet['worst_coverage']:.3f})"
        )
    for name in sorted(report["tenants"]):
        summary = report["tenants"][name]
        cov = summary["coverage"]
        staleness = summary["staleness_s"]
        slo = summary.get("slo", {}).get("state", "-")
        print(
            f"  {name}: drift {summary['drift_score']:.2f} "
            f"({summary['drift_alarms']} alarm(s)), coverage "
            + ("n/a" if cov is None else f"{cov:.3f}")
            + f"/{summary['coverage_checks']}, staleness "
            + ("-" if staleness is None else f"{staleness:.1f}s")
            + f", slo {slo}, {summary['alerts']} alert(s)"
        )
    for alert in report["alerts"]:
        tag = f" {alert['procedure']}" if alert.get("procedure") else ""
        print(
            f"  alert [{alert['severity']}] {alert['kind']} "
            f"{alert['source']}{tag}: {alert['value']:.4g} vs threshold "
            f"{alert['threshold']:.4g}"
            + (f" — {alert['detail']}" if alert.get("detail") else "")
        )
    movers = report.get("counter_movers")
    if movers:
        print("top moved counters:")
        for row in movers:
            delta = row["delta"]
            rendered = f"{delta:+.3f}" if isinstance(delta, float) else f"{delta:+d}"
            rel = "-" if row["relative"] is None else f"{row['relative']:+.1%}"
            print(
                f"  {row['counter']}: {row['before']} -> {row['after']} "
                f"({rendered}, {rel})"
            )


def _problems(report: dict, expect_drift: bool) -> list[str]:
    fleet = report["fleet"]
    problems = []
    alert_kinds = {alert["kind"] for alert in report["alerts"]}
    if expect_drift:
        if fleet["drift_alarms"] < 1:
            problems.append("expected a drift alarm; the detectors stayed quiet")
        tolerated = {"drift", "coverage"}
        bad = sorted(alert_kinds - tolerated)
        if bad:
            problems.append(f"unexpected alert kind(s): {', '.join(bad)}")
    else:
        if fleet["drift_alarms"] > 0:
            problems.append(f"{fleet['drift_alarms']} drift alarm(s)")
        tenant_alerts = sum(s["alerts"] for s in report["tenants"].values())
        total_alerts = max(fleet["alerts"], tenant_alerts)
        if total_alerts > 0:
            kinds = f" ({', '.join(sorted(alert_kinds))})" if alert_kinds else ""
            problems.append(f"{total_alerts} health alert(s){kinds}")
    for name in sorted(report["tenants"]):
        if report["tenants"][name].get("slo", {}).get("state") == "breached":
            problems.append(f"{name}: SLO breached")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if (args.report is None) == (args.stats is None):
        print("pass exactly one of --report or --stats", file=sys.stderr)
        return 2
    if args.expect_drift and not args.check:
        print("--expect-drift only makes sense with --check", file=sys.stderr)
        return 2
    if (args.counters_before is None) != (args.counters_after is None):
        print(
            "--counters-before and --counters-after come as a pair",
            file=sys.stderr,
        )
        return 2
    for flag, path in (
        ("--report", args.report),
        ("--stats", args.stats),
        ("--alerts", args.alerts),
        ("--counters-before", args.counters_before),
        ("--counters-after", args.counters_after),
    ):
        if path is not None and not path.is_file():
            print(f"{flag}: no such file: {path}", file=sys.stderr)
            return 2

    try:
        report = _load_report(args)
        if args.counters_before is not None:
            # Drift alerts name *what* drifted; the counter movers name
            # what the hardware was doing differently while it drifted.
            report["counter_movers"] = snapshot_deltas(
                _load_counter_snapshot(args.counters_before),
                _load_counter_snapshot(args.counters_after),
                top=10,
            )
    except (ArtifactError, OSError, json.JSONDecodeError) as exc:
        print(f"health report FAILED to load: {exc}", file=sys.stderr)
        return 1

    _render(report)
    if args.json_path is not None:
        try:
            args.json_path.write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n"
            )
        except OSError as exc:
            print(f"--json: could not write {args.json_path}: {exc}", file=sys.stderr)
            return 1

    if args.check:
        problems = _problems(report, args.expect_drift)
        if problems:
            for problem in problems:
                print(f"UNHEALTHY: {problem}", file=sys.stderr)
            return 1
        print("healthy" + (" (drift detected, as expected)" if args.expect_drift else ""))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
