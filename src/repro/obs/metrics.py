"""Counters, gauges and fixed-bucket histograms for pipeline telemetry.

The registry answers "where did the work go" questions the trace timeline
cannot aggregate on its own: how many activations did the simulator execute,
how many EM iterations did the fits burn, how often did the result cache
hit, how many faults fired by kind.  Design mirrors :mod:`repro.obs.trace`:

* **No-op by default.**  Instrumented code calls the module-level helpers
  (:func:`inc`, :func:`observe`, :func:`set_gauge`); with no registry
  installed each is a single global read and an early return — zero
  allocation, zero locking, zero effect on tables or RNG streams.
* **Mergeable snapshots.**  A registry serializes to a plain-JSON snapshot
  (:meth:`MetricsRegistry.snapshot`) and absorbs snapshots captured in
  worker processes (:meth:`MetricsRegistry.merge_snapshot`): counters and
  histogram buckets add, gauges last-write-wins — so callers must merge in
  a deterministic order (the engine merges in experiment request order).
* **Fixed buckets.**  Histograms use explicit upper-bound buckets chosen at
  first observation (plus the implicit ``+Inf``), so merged histograms from
  different processes always line up.
"""

from __future__ import annotations

import bisect
import json
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from repro.errors import ObsError

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_registry",
    "metrics_active",
    "inc",
    "set_gauge",
    "observe",
    "write_metrics",
]

#: Default histogram upper bounds — spans of seconds-scale pipeline stages.
DEFAULT_BUCKETS: tuple[float, ...] = (0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        self.value += amount


class Gauge:
    """A last-value-wins instantaneous reading."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus sum and count.

    ``bounds`` are inclusive upper bounds in increasing order; one implicit
    overflow bucket catches everything beyond the last bound.
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(nxt <= prev for nxt, prev in zip(bounds[1:], bounds)):
            raise ValueError(f"bucket bounds must be increasing, got {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: Union[int, float]) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """Thread-safe name → instrument store with JSON snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge()
            return self._gauges[name]

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(bounds)
            return self._histograms[name]

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-JSON view of every instrument (stable key order)."""
        with self._lock:
            return {
                "counters": {k: self._counters[k].value for k in sorted(self._counters)},
                "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
                "histograms": {
                    k: {
                        "bounds": list(h.bounds),
                        "counts": list(h.counts),
                        "sum": h.total,
                        "count": h.count,
                    }
                    for k, h in sorted(self._histograms.items())
                },
            }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a worker's snapshot in: counters/histograms add, gauges win.

        Histogram bucket layouts must match (they do, by the fixed-bucket
        rule); a mismatched layout raises :class:`~repro.errors.ObsError`
        rather than silently misbinning.  The merge is **atomic across the
        whole snapshot**: every histogram entry is validated against this
        registry *before* any counter, gauge or bucket is touched, so a
        malformed snapshot can never leave the registry partially merged.
        """
        validated: list[tuple[str, list[float], dict]] = []
        for name, data in snap.get("histograms", {}).items():
            bounds = [float(b) for b in data["bounds"]]
            if len(data["counts"]) != len(bounds) + 1:
                raise ObsError(
                    f"histogram {name!r}: snapshot carries {len(data['counts'])} "
                    f"buckets for {len(bounds)} bounds (want {len(bounds) + 1}); "
                    "refusing a misaligned merge"
                )
            with self._lock:
                held = self._histograms.get(name)
            if held is not None and list(held.bounds) != bounds:
                raise ObsError(
                    f"histogram {name!r}: bucket bounds differ between processes "
                    f"({list(held.bounds)} vs {bounds}); merging would misbin "
                    "every observation"
                )
            validated.append((name, bounds, data))
        for name, value in snap.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, bounds, data in validated:
            hist = self.histogram(name, bounds)
            for i, count in enumerate(data["counts"]):
                hist.counts[i] += count
            hist.total += data["sum"]
            hist.count += data["count"]


# --------------------------------------------------------------------------
# The installed registry (one per process; workers install their own)
# --------------------------------------------------------------------------

_ACTIVE: Optional[MetricsRegistry] = None


def current_registry() -> Optional[MetricsRegistry]:
    """The registry the helpers feed, or ``None`` when telemetry is off."""
    return _ACTIVE


@contextmanager
def metrics_active(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the process-wide active registry for the body."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous


def inc(name: str, amount: Union[int, float] = 1) -> None:
    """Increment counter ``name`` on the active registry (no-op when off)."""
    registry = _ACTIVE
    if registry is not None:
        registry.counter(name).inc(amount)


def set_gauge(name: str, value: Union[int, float]) -> None:
    """Set gauge ``name`` on the active registry (no-op when off)."""
    registry = _ACTIVE
    if registry is not None:
        registry.gauge(name).set(value)


def observe(
    name: str,
    value: Union[int, float],
    bounds: Sequence[float] = DEFAULT_BUCKETS,
) -> None:
    """Observe ``value`` into histogram ``name`` (no-op when off)."""
    registry = _ACTIVE
    if registry is not None:
        registry.histogram(name, bounds).observe(value)


def write_metrics(
    path: Union[str, Path],
    registry: MetricsRegistry,
    manifest: Optional[dict] = None,
    hardware_counters: Optional[dict] = None,
    serve: Optional[dict] = None,
    health: Optional[dict] = None,
) -> Path:
    """Write the registry snapshot (plus an optional run manifest) as JSON.

    ``hardware_counters`` — a snapshot from
    :meth:`repro.obs.counters.HardwareCounters.snapshot` — rides along under
    its own key when the run captured mote-level counters; ``serve`` — an
    ingestion-service stats payload
    (:meth:`repro.serve.service.IngestionService.stats_payload`) — likewise
    for service runs; ``health`` — a fleet health report
    (:func:`repro.obs.health.build_health_report`) — for monitored runs.
    These five keys are the file's complete top-level vocabulary;
    :func:`repro.obs.validate.validate_metrics_file` rejects anything else.
    """
    path = Path(path)
    payload: dict = {"metrics": registry.snapshot()}
    if manifest is not None:
        payload["manifest"] = manifest
    if hardware_counters is not None:
        payload["hardware_counters"] = hardware_counters
    if serve is not None:
        payload["serve"] = serve
    if health is not None:
        payload["health"] = health
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
