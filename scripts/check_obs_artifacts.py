#!/usr/bin/env python
"""Validate ``--trace`` / ``--metrics`` artifacts from a telemetry run.

CI's observability smoke job runs one small experiment with telemetry on and
pipes the artifacts through this script; it exits non-zero with a
path-qualified message on the first structural violation (see
:mod:`repro.obs.validate` for the contracts checked).  Usage::

    python scripts/check_obs_artifacts.py \
        --trace trace.jsonl [--trace-format jsonl|chrome] \
        --metrics metrics.json [--require-coverage]

``--require-coverage`` additionally asserts the span names prove the trace
covered the engine, sim and estimator layers.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.validate import (
    ArtifactError,
    require_span_coverage,
    validate_chrome_trace,
    validate_metrics_file,
    validate_trace_jsonl,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default=None, help="trace artifact to validate")
    parser.add_argument(
        "--trace-format", choices=("jsonl", "chrome"), default="jsonl"
    )
    parser.add_argument("--metrics", default=None, help="metrics artifact to validate")
    parser.add_argument(
        "--require-coverage",
        action="store_true",
        help="assert the trace covers the engine, sim and estimator layers",
    )
    args = parser.parse_args(argv)
    if args.trace is None and args.metrics is None:
        parser.error("nothing to check; pass --trace and/or --metrics")

    try:
        if args.trace is not None:
            if args.trace_format == "chrome":
                summary = validate_chrome_trace(args.trace)
            else:
                summary = validate_trace_jsonl(args.trace)
            print(
                f"{args.trace}: OK — {summary['spans']} spans, "
                f"{len(summary['names'])} distinct names"
            )
            if args.require_coverage:
                covered = require_span_coverage(summary["names"])
                print(f"{args.trace}: covers {', '.join(sorted(covered))}")
        if args.metrics is not None:
            summary = validate_metrics_file(args.metrics)
            print(
                f"{args.metrics}: OK — {summary['counters']} counters, "
                f"{summary['histograms']} histograms, "
                f"manifest={'yes' if summary['has_manifest'] else 'no'}"
            )
    except ArtifactError as exc:
        print(f"artifact check FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
