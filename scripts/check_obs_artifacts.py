#!/usr/bin/env python
"""Validate telemetry artifacts from an observed or benchmarked run.

CI's observability smoke job runs one small experiment with telemetry on and
pipes the artifacts through this script; it exits non-zero with a
path-qualified message on the first structural violation (see
:mod:`repro.obs.validate` for the contracts checked).  Usage::

    python scripts/check_obs_artifacts.py \
        --trace trace.jsonl [--trace-format jsonl|chrome] \
        --metrics metrics.json [--require-coverage] \
        --hw-counters snapshot.json --bench BENCH_2026-08-06.json \
        --health health.json --alerts alerts.jsonl --report report.json

``--require-coverage`` additionally asserts the span names prove the trace
covered the engine, sim and estimator layers.  ``--hw-counters`` validates a
hardware-counter snapshot (``benchmarks/results/counters/*.json`` or any
file holding a ``repro.hwcounters/1`` object); ``--bench`` validates a
``BENCH_<date>.json`` history file written by ``scripts/bench_track.py``;
``--health`` validates a standalone fleet health report
(``repro.health-report/1``) and ``--alerts`` a JSONL alert log
(``repro.health-alert/1`` lines), both as written by ``repro-serve`` /
``repro-health``; ``--report`` validates a ``repro.obs-report/1``
attribution report as written by ``repro-obs explain --json``.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.validate import (
    ArtifactError,
    require_span_coverage,
    validate_alert_log,
    validate_bench_file,
    validate_chrome_trace,
    validate_health_report,
    validate_hw_counters_file,
    validate_metrics_file,
    validate_obs_report,
    validate_trace_jsonl,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog="exit codes: 0 all artifacts valid; 1 invalid or unreadable "
        "artifact; 2 usage error",
    )
    parser.add_argument("--trace", default=None, help="trace artifact to validate")
    parser.add_argument(
        "--trace-format", choices=("jsonl", "chrome"), default="jsonl"
    )
    parser.add_argument("--metrics", default=None, help="metrics artifact to validate")
    parser.add_argument(
        "--hw-counters",
        default=None,
        metavar="PATH",
        help="hardware-counter snapshot JSON to validate",
    )
    parser.add_argument(
        "--bench",
        default=None,
        metavar="PATH",
        help="BENCH_<date>.json benchmark-history file to validate",
    )
    parser.add_argument(
        "--health",
        default=None,
        metavar="PATH",
        help="fleet health-report JSON to validate",
    )
    parser.add_argument(
        "--alerts",
        default=None,
        metavar="PATH",
        help="JSONL health-alert log to validate",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="repro.obs-report/1 attribution report to validate",
    )
    parser.add_argument(
        "--require-coverage",
        action="store_true",
        help="assert the trace covers the engine, sim and estimator layers",
    )
    args = parser.parse_args(argv)
    if all(
        value is None
        for value in (
            args.trace,
            args.metrics,
            args.hw_counters,
            args.bench,
            args.health,
            args.alerts,
            args.report,
        )
    ):
        parser.error(
            "nothing to check; pass --trace, --metrics, --hw-counters, "
            "--bench, --health, --alerts and/or --report"
        )

    try:
        if args.trace is not None:
            if args.trace_format == "chrome":
                summary = validate_chrome_trace(args.trace)
            else:
                summary = validate_trace_jsonl(args.trace)
            print(
                f"{args.trace}: OK — {summary['spans']} spans, "
                f"{len(summary['names'])} distinct names"
            )
            if args.require_coverage:
                covered = require_span_coverage(summary["names"])
                print(f"{args.trace}: covers {', '.join(sorted(covered))}")
        if args.metrics is not None:
            summary = validate_metrics_file(args.metrics)
            print(
                f"{args.metrics}: OK — {summary['counters']} counters, "
                f"{summary['histograms']} histograms, "
                f"manifest={'yes' if summary['has_manifest'] else 'no'}, "
                f"hw-counters={'yes' if summary['has_hw_counters'] else 'no'}, "
                f"serve={'yes' if summary['has_serve'] else 'no'}, "
                f"health={'yes' if summary['has_health'] else 'no'}"
            )
        if args.health is not None:
            summary = validate_health_report(args.health)
            print(
                f"{args.health}: OK — {summary['tenants']} tenant(s), "
                f"{summary['alerts']} alert(s)"
            )
        if args.alerts is not None:
            summary = validate_alert_log(args.alerts)
            kinds = ", ".join(sorted(summary["kinds"])) or "none"
            print(
                f"{args.alerts}: OK — {summary['alerts']} alert(s), kinds: {kinds}"
            )
        if args.hw_counters is not None:
            summary = validate_hw_counters_file(args.hw_counters)
            print(
                f"{args.hw_counters}: OK — {summary['counters']} counters, "
                f"{summary['procs']} procedures attributed"
            )
        if args.bench is not None:
            summary = validate_bench_file(args.bench)
            print(
                f"{args.bench}: OK — {summary['records']} record(s), "
                f"{summary['benchmarks']} benchmark stat(s), "
                f"{summary['snapshots']} counter snapshot(s)"
            )
        if args.report is not None:
            summary = validate_obs_report(args.report)
            if "rows" in summary:
                detail = f"{summary['rows']} row(s)"
            else:
                detail = (
                    f"{summary['sections']} attribution section(s), "
                    f"{summary['notes']} note(s)"
                )
            print(f"{args.report}: OK — kind {summary['kind']}, {detail}")
    except (ArtifactError, OSError) as exc:
        print(f"artifact check FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
