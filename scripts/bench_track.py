#!/usr/bin/env python
"""Track benchmark runs over time and gate on regressions.

Two modes, usable together or separately:

**Ingest** — after ``pytest benchmarks/ --benchmark-only
--benchmark-json=bench.json`` (the benchmark conftest also dumps
hardware-counter snapshots under ``benchmarks/results/counters/``), fold
the run into the append-only history::

    python scripts/bench_track.py \\
        --benchmark-json bench.json \\
        --counters-dir benchmarks/results/counters \\
        --history-dir benchmarks/history

**Check** — gate the newest history point against the trail::

    python scripts/bench_track.py --check --history-dir benchmarks/history

The check fails (exit 1) on a wall-clock regression beyond
``--max-regression`` (default 20% over the trailing median) or on counter
drift — hardware counters are seed-determined, so two runs at the same git
sha must be bit-identical.  ``--counter-determinism-only`` skips the
wall-clock gate; use it on shared CI runners where time is noise but
determinism is still binary.  A failing check doesn't just name the
threshold breach: it prints the full :mod:`repro.obs.compare` attribution
table (which benchmarks moved, which counter groups, which procedures) so
the gate explains itself.

**Summary** — distill the whole history into a repo-root dashboard file::

    python scripts/bench_track.py --render-summary BENCH_2026-08-08.json

The summary carries each benchmark's current vs trailing median plus the
headline numbers parsed from ``benchmarks/results/`` (ingestion shards/s,
fleet speedup, obs overhead), when those result files exist.

Exit codes: 0 ok, 1 regression/drift or bad artifact, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.errors import ObsError
from repro.obs.bench_history import (
    DEFAULT_MAX_REGRESSION,
    append_record,
    bench_path,
    build_record,
    check_history,
    load_history,
    summarize_history,
)
from repro.obs.compare import explain_history, format_report

DEFAULT_HISTORY_DIR = Path("benchmarks") / "history"
DEFAULT_RESULTS_DIR = Path("benchmarks") / "results"


def git_sha() -> str:
    """The current commit hash, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


def _load_counter_snapshots(directory: Path) -> dict:
    snapshots = {}
    for path in sorted(directory.glob("*.json")):
        try:
            snapshots[path.stem] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ObsError(f"cannot read counter snapshot {path}: {exc}") from exc
    return snapshots


def _table_value(text: str, key: str):
    """``key   value`` lines in the text result tables (obs.txt et al.)."""
    for line in text.splitlines():
        fields = line.split()
        if len(fields) == 2 and fields[0] == key:
            try:
                return float(fields[1])
            except ValueError:
                return None
    return None


def headline_numbers(results_dir: Path) -> dict:
    """Headline figures from ``benchmarks/results/``; ``None`` when absent.

    Each number is parsed tolerantly from its result artifact — a missing
    or reshaped file yields ``null`` in the summary, never a crash (these
    files are benchmark output, regenerated on a different cadence than
    the history).
    """
    headline = {
        "serve_shards_per_s": None,
        "fleet_speedup_max": None,
        "obs_overhead_ratio": None,
        "health_overhead_ratio": None,
    }
    serve = results_dir / "serve.txt"
    if serve.exists():
        try:
            headline["serve_shards_per_s"] = json.loads(serve.read_text()).get(
                "shards_per_s"
            )
        except (OSError, json.JSONDecodeError):
            pass
    fleet = results_dir / "fleet.txt"
    if fleet.exists():
        speedups = []
        try:
            for line in fleet.read_text().splitlines():
                fields = line.split()
                if len(fields) >= 6 and fields[0] not in ("workload",):
                    try:
                        speedups.append(float(fields[-1]))
                    except ValueError:
                        continue
        except OSError:
            pass
        if speedups:
            headline["fleet_speedup_max"] = max(speedups)
    for key, name in (
        ("obs_overhead_ratio", "obs.txt"),
        ("health_overhead_ratio", "obs_health.txt"),
    ):
        path = results_dir / name
        if path.exists():
            try:
                headline[key] = _table_value(path.read_text(), "ratio")
            except OSError:
                pass
    return headline


def render_summary(history_dir: Path, results_dir: Path, out: Path) -> dict:
    """Write the distilled repo-root ``BENCH_<date>.json`` dashboard file."""
    records = load_history(history_dir)
    if not records:
        raise ObsError(f"no bench history under {history_dir}")
    summary = summarize_history(records)
    summary["headline"] = headline_numbers(results_dir)
    out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return summary


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bench_track",
        description=__doc__.splitlines()[0],
        epilog="exit codes: 0 ok; 1 regression, drift, or unreadable artifact; "
        "2 usage error",
    )
    parser.add_argument(
        "--benchmark-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="pytest-benchmark JSON export to ingest",
    )
    parser.add_argument(
        "--counters-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory of per-benchmark hardware-counter snapshot JSONs "
        "(e.g. benchmarks/results/counters)",
    )
    parser.add_argument(
        "--history-dir",
        type=Path,
        default=DEFAULT_HISTORY_DIR,
        metavar="DIR",
        help=f"bench-history location (default: {DEFAULT_HISTORY_DIR})",
    )
    parser.add_argument(
        "--date",
        default=None,
        metavar="YYYY-MM-DD",
        help="history file date to ingest into (default: today)",
    )
    parser.add_argument(
        "--git-sha",
        default=None,
        metavar="SHA",
        help="commit to stamp on the record (default: git rev-parse HEAD)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate the newest history record against the trailing records",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        metavar="FRAC",
        help="wall-clock slowdown tolerance as a fraction "
        f"(default: {DEFAULT_MAX_REGRESSION})",
    )
    parser.add_argument(
        "--counter-determinism-only",
        action="store_true",
        help="check only counter bit-identity, not wall-clock (for shared "
        "CI runners where time is noise)",
    )
    parser.add_argument(
        "--render-summary",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the distilled history summary (current vs trailing "
        "medians + headline numbers) to PATH, e.g. BENCH_2026-08-08.json "
        "at the repo root",
    )
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=DEFAULT_RESULTS_DIR,
        metavar="DIR",
        help="benchmark result artifacts for the summary's headline "
        f"numbers (default: {DEFAULT_RESULTS_DIR})",
    )
    return parser


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    ingest = args.benchmark_json is not None or args.counters_dir is not None
    if not ingest and not args.check and args.render_summary is None:
        parser.error(
            "nothing to do; pass --benchmark-json/--counters-dir to ingest, "
            "--check to gate, and/or --render-summary to distill"
        )
    if args.max_regression < 0:
        parser.error(f"--max-regression must be >= 0, got {args.max_regression}")

    try:
        if ingest:
            benchmark_payload = None
            if args.benchmark_json is not None:
                try:
                    benchmark_payload = json.loads(args.benchmark_json.read_text())
                except (OSError, json.JSONDecodeError) as exc:
                    raise ObsError(
                        f"cannot read benchmark export {args.benchmark_json}: {exc}"
                    ) from exc
            snapshots = (
                _load_counter_snapshots(args.counters_dir)
                if args.counters_dir is not None
                else None
            )
            record = build_record(
                benchmark_payload=benchmark_payload,
                counter_snapshots=snapshots,
                git_sha=args.git_sha or git_sha(),
            )
            path = append_record(bench_path(args.history_dir, args.date), record)
            print(
                f"{path}: recorded {len(record['benchmarks'])} benchmark(s), "
                f"{len(record['counters'])} counter snapshot(s) "
                f"at {record['git_sha'][:12]}"
            )

        if args.check:
            records = load_history(args.history_dir)
            failures = check_history(
                records,
                max_regression=args.max_regression,
                wallclock=not args.counter_determinism_only,
                counters=True,
            )
            if failures:
                for failure in failures:
                    print(f"bench check FAILED: {failure}", file=sys.stderr)
                # A failing gate explains itself: attribute the newest
                # record against its baseline so the log names the moved
                # benchmarks, counter groups and procedures, not just the
                # breached threshold.
                try:
                    report = explain_history(records)
                except ObsError:
                    pass
                else:
                    print(file=sys.stderr)
                    print(format_report(report), file=sys.stderr)
                return 1
            gates = (
                "counter determinism"
                if args.counter_determinism_only
                else f"wall-clock (+{args.max_regression:.0%}) and counter determinism"
            )
            print(f"bench check OK: {len(records)} record(s), gates: {gates}")

        if args.render_summary is not None:
            summary = render_summary(
                args.history_dir, args.results_dir, args.render_summary
            )
            print(
                f"{args.render_summary}: summarized "
                f"{summary['records']} record(s), "
                f"{len(summary['benchmarks'])} benchmark(s) "
                f"at {summary['git_sha'][:12]}"
            )
    except ObsError as exc:
        print(f"bench track FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
